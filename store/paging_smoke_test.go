package store

import (
	"os"
	"path/filepath"
	"testing"

	"kvcc"
	"kvcc/gen"
)

// Beyond-RAM smoke, driven by CI under a cgroup memory cap. Both halves
// are inert (skipped) unless KVCC_COLD_SMOKE_DIR points at a scratch
// directory. The generate half runs outside the cgroup — building the
// graph needs the full CSR on the heap — and leaves only a snapshot
// file behind; the serve half is what runs under systemd-run with
// MemoryMax well below the mapping size, proving a sequential cold
// enumeration completes when the mapping cannot be resident all at
// once.
const coldSmokeEnv = "KVCC_COLD_SMOKE_DIR"

// Sized so the mapping (~290 MB) exceeds the cap CI applies (192 MB):
// the serve half must survive on partial residency.
const (
	coldSmokeN = 2_000_000
	coldSmokeM = 16_000_000
)

func coldSmokeDir(t *testing.T) string {
	dir := os.Getenv(coldSmokeEnv)
	if dir == "" {
		t.Skipf("%s not set; cgroup smoke only runs under CI's systemd-run harness", coldSmokeEnv)
	}
	return dir
}

func TestColdSmokeGenerate(t *testing.T) {
	dir := coldSmokeDir(t)
	g := gen.Community(coldSmokeN, coldSmokeM, 7)
	if err := WriteSnapshot(filepath.Join(dir, snapshotName), g, 1); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	info, err := os.Stat(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold smoke snapshot: %d MB", info.Size()>>20)
}

func TestColdSmokeServe(t *testing.T) {
	dir := coldSmokeDir(t)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	g, _, ok := st.Graph()
	if !ok {
		t.Fatal("no graph recovered from the smoke snapshot")
	}
	if g.NumVertices() != coldSmokeN {
		t.Fatalf("recovered n=%d, want %d", g.NumVertices(), coldSmokeN)
	}
	// k above every core number: the enumeration is one full reduction
	// scan over the (mostly non-resident) edge array.
	res, err := kvcc.Enumerate(g, 64)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if resident, total, probed := st.Snapshot().Residency(); probed {
		t.Logf("served scan with %d/%d mapping pages resident at exit (%d components)",
			resident, total, len(res.Components))
	}
}
