//go:build failpoint

package store

import (
	"testing"

	"kvcc/graph"
	"kvcc/internal/difftest"
	"kvcc/internal/failpoint"
)

// TestChaosCompactToStoreWriteFailure injects a failure into each of the
// spill's two snapshot-side failpoints (payload write, pre-rename sync).
// Both sit before the rename, so a refused spill must leave the store
// fully intact — old snapshot served, WAL untouched — and a retry after
// the fault clears must land the identical state a never-failed spill
// would have produced, surviving a crash.
func TestChaosCompactToStoreWriteFailure(t *testing.T) {
	for _, fp := range []string{"store/snapshot-write", "store/snapshot-sync"} {
		t.Run(fp, func(t *testing.T) {
			base := difftest.Corpus()[0].G
			dir := t.TempDir()
			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Checkpoint(base, 1); err != nil {
				t.Fatal(err)
			}
			delta := graph.NewDeltaAt(base, 1)
			v0 := delta.Version()
			ins := [][2]int64{{5001, 5002}, {5002, 5003}}
			for _, e := range ins {
				delta.InsertEdge(e[0], e[1])
			}
			if err := st.Append(Batch{PrevVersion: v0, NewVersion: delta.Version(), Inserts: ins}); err != nil {
				t.Fatal(err)
			}
			ref := graph.NewDeltaAt(base, 1)
			for _, e := range ins {
				ref.InsertEdge(e[0], e[1])
			}
			want := ref.Compact()
			wantVersion := ref.Version()

			armFailpoints(t, fp+"=error")
			if _, err := st.CompactToStore(delta, "chaos-key"); !failpoint.IsInjected(err) {
				t.Fatalf("CompactToStore under %s: err = %v, want injected", fp, err)
			}
			// The refused spill changed nothing the store acknowledges.
			if st.Pending() != 1 {
				t.Fatalf("pending = %d after refused spill, want 1", st.Pending())
			}
			if _, ok := st.IdempotencyKeys()["chaos-key"]; ok {
				t.Fatal("idempotency key recorded by a spill that never landed")
			}
			failpoint.Reset()

			// Retry with the fault cleared: the delta was not consumed.
			g, err := st.CompactToStore(delta, "chaos-key")
			if err != nil {
				t.Fatalf("retry CompactToStore: %v", err)
			}
			sameGraph(t, g, want)
			if st.Pending() != 0 {
				t.Fatalf("pending = %d after successful spill", st.Pending())
			}
			// Crash (no Close) and recover.
			st2, err := Open(dir, Options{VerifyOnOpen: true})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st2.Close()
			g2, v2, _ := st2.Graph()
			if v2 != wantVersion {
				t.Fatalf("recovered version %d, want %d", v2, wantVersion)
			}
			if replayed, _ := st2.Replayed(); replayed != 0 {
				t.Fatalf("replayed %d batches after spill", replayed)
			}
			sameGraph(t, g2, want)
		})
	}
}
