package store

import (
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
)

// Idempotency-key retention. Every keyed batch in the WAL already makes
// its key recoverable (replay re-learns it from the record), but a
// checkpoint truncates the WAL — and with it every key it carried. The
// retention file bridges that gap: Checkpoint writes the store's current
// key set alongside the snapshot, and Open seeds from it before replay
// adds keys from the surviving WAL tail.
//
// Retention is deliberately best-effort. A crash between WAL truncate and
// retention write loses keys, which only widens the replay window back to
// "at-most-once per process lifetime plus WAL horizon" — the client-visible
// effect is that a very unluckily timed retry after a crash re-applies
// instead of replaying, and edge-level edits re-apply idempotently unless
// interleaved with other writers. Durability of the graph itself never
// depends on this file.
//
// File layout (little-endian): magic "KVIK", u32 count, u64 CRC64 of the
// entry section, then per entry [u64 version][u32 keyLen][key bytes]. A
// damaged file is ignored wholesale, never an open error.

const (
	idemMagic = 0x4b49564b // "KVIK"
	// maxRetainedKeys bounds the retention set; the lowest-version (oldest)
	// keys are evicted first, mirroring the server's bounded replay table.
	maxRetainedKeys = 1024
)

// rememberKey records one applied key at the version its batch produced.
// Caller holds s.mu.
func (s *Store) rememberKey(key string, version uint64) {
	if key == "" {
		return
	}
	if s.idemKeys == nil {
		s.idemKeys = make(map[string]uint64)
	}
	s.idemKeys[key] = version
	if len(s.idemKeys) <= maxRetainedKeys {
		return
	}
	// Evict oldest keys down to the bound.
	type kv struct {
		k string
		v uint64
	}
	all := make([]kv, 0, len(s.idemKeys))
	for k, v := range s.idemKeys {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	for _, e := range all[:len(all)-maxRetainedKeys] {
		delete(s.idemKeys, e.k)
	}
}

// IdempotencyKeys returns every idempotency key the store knows was
// applied, with the overlay version each one produced — the seed for the
// serving layer's replay table after recovery.
func (s *Store) IdempotencyKeys() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.idemKeys))
	for k, v := range s.idemKeys {
		out[k] = v
	}
	return out
}

// saveIdemLocked writes the retention file atomically. Best-effort: the
// caller ignores the error (see the package comment above).
func (s *Store) saveIdemLocked() error {
	path := filepath.Join(s.dir, idemName)
	if len(s.idemKeys) == 0 {
		err := os.Remove(path)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	size := 0
	for k := range s.idemKeys {
		size += 12 + len(k)
	}
	buf := make([]byte, 16+size)
	binary.LittleEndian.PutUint32(buf[0:4], idemMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(s.idemKeys)))
	off := 16
	for k, v := range s.idemKeys {
		binary.LittleEndian.PutUint64(buf[off:], v)
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(k)))
		copy(buf[off+12:], k)
		off += 12 + len(k)
	}
	binary.LittleEndian.PutUint64(buf[8:16], crc64.Checksum(buf[16:], crcTable))
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	return atomicReplace(f, tmp, path)
}

// loadIdem reads the retention file into the store's key set. Any damage
// makes the file worthless, not the store: retention is best-effort, so a
// bad magic, short section, or CRC mismatch just drops it.
func (s *Store) loadIdem() {
	data, err := os.ReadFile(filepath.Join(s.dir, idemName))
	if err != nil || len(data) < 16 {
		return
	}
	if binary.LittleEndian.Uint32(data[0:4]) != idemMagic {
		return
	}
	if crc64.Checksum(data[16:], crcTable) != binary.LittleEndian.Uint64(data[8:16]) {
		return
	}
	count := int(binary.LittleEndian.Uint32(data[4:8]))
	off := 16
	for i := 0; i < count; i++ {
		if off+12 > len(data) {
			return
		}
		v := binary.LittleEndian.Uint64(data[off:])
		keyLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		if off+12+keyLen > len(data) {
			return
		}
		s.rememberKey(string(data[off+12:off+12+keyLen]), v)
		off += 12 + keyLen
	}
}
