package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

var benchComponents int

// BenchmarkEnumerateColdCache measures enumeration against a mapped
// snapshot whose pages were evicted before every iteration
// (MADV_DONTNEED plus a page-cache drop), A/B'd across the paging
// policy. Two workload shapes:
//
//   - scan: k above every core number, so the run is exactly the k-core
//     reduction — a pass over the whole cold edge array. This is the
//     fault-dominated path the ascending-id wave order and
//     MADV_SEQUENTIAL advice exist for, on a mapping large enough that
//     readahead policy decides the wall clock.
//   - full: a complete k-VCC enumeration on a smaller graph, where the
//     WILLNEED next-component hints and the flow copy-out boundary are
//     exercised alongside the reduction.
//
// The off/auto gap within each shape is the value of the paging work;
// the full shape dilutes it with flow compute, by design.
func BenchmarkEnumerateColdCache(b *testing.B) {
	shapes := []struct {
		name string
		n, m int
		k    int
	}{
		{"scan", 400_000, 3_200_000, 64},
		{"full", 30_000, 240_000, 6},
	}
	for _, shape := range shapes {
		g := gen.Community(shape.n, shape.m, 7)
		for _, policy := range []PagingPolicy{PagingOff, PagingAuto} {
			b.Run(fmt.Sprintf("%s/paging=%s", shape.name, policy), func(b *testing.B) {
				path := filepath.Join(b.TempDir(), snapshotName)
				if err := WriteSnapshot(path, g, 1); err != nil {
					b.Fatal(err)
				}
				snap, err := OpenSnapshot(path)
				if err != nil {
					b.Fatal(err)
				}
				defer snap.Close()
				var counters PagingCounters
				if policy == PagingAuto {
					snap.EnablePaging(&counters)
				}
				mapped := snap.Graph()
				b.SetBytes(snap.MappedBytes())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := snap.Evict(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := kvcc.Enumerate(mapped, shape.k)
					if err != nil {
						b.Fatal(err)
					}
					benchComponents = len(res.Components)
				}
			})
		}
	}
}

// BenchmarkCompactToStore times the zero-heap spill: one fresh edit per
// iteration folded — together with the whole base graph — straight into
// a new snapshot file, remapped and adopted. allocs/op is the metric
// that matters: it must stay flat at O(delta) while bytes/op (the
// streamed snapshot size) is the full CSR.
func BenchmarkCompactToStore(b *testing.B) {
	base := gen.Community(50_000, 400_000, 9)
	dir := b.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Checkpoint(base, 1); err != nil {
		b.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(2_000_000 + 2*i)
		delta.InsertEdge(lo, lo+1)
		g, err := st.CompactToStore(delta, fmt.Sprintf("bench-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(st.Snapshot().MappedBytes())
		benchComponents = g.NumEdges()
	}
}
