package store

import (
	"fmt"
	"os"
	"sync/atomic"

	"kvcc/internal/residency"
)

// Paging policy for mmap'd snapshots. The enumeration layers volunteer
// access intent through graph.Advisor hints (sequential reduction scans,
// next-component ranges); the store turns those hints into madvise calls
// on the mapping, plus MADV_DONTNEED releases when a mapping is retired
// by a checkpoint. Hints never change results — disabling the policy is
// always safe, it just makes cold scans pay default readahead.

// PagingPolicy selects how the store advises the kernel about snapshot
// mappings.
type PagingPolicy int

const (
	// PagingAuto (default) forwards enumeration access hints as madvise
	// calls and releases retired mappings with MADV_DONTNEED. On
	// platforms without mmap (or without in-place aliasing) it silently
	// degrades to PagingOff.
	PagingAuto PagingPolicy = iota
	// PagingOff issues no advice at all: the kernel's default readahead
	// and eviction apply. The A/B baseline for the cold-cache benchmarks.
	PagingOff
)

// ParsePagingPolicy parses the -paging flag / config form of a policy:
// "auto" (or empty) and "off".
func ParsePagingPolicy(s string) (PagingPolicy, error) {
	switch s {
	case "", "auto":
		return PagingAuto, nil
	case "off":
		return PagingOff, nil
	default:
		return PagingOff, fmt.Errorf("store: unknown paging policy %q (want auto or off)", s)
	}
}

// String returns the flag form of the policy.
func (p PagingPolicy) String() string {
	if p == PagingOff {
		return "off"
	}
	return "auto"
}

// PagingCounters accumulates advice activity across one store's
// mappings. All fields are updated atomically; enumeration workers
// advise concurrently.
type PagingCounters struct {
	SequentialHints atomic.Int64 // MADV_SEQUENTIAL passes issued
	WillNeedHints   atomic.Int64 // MADV_WILLNEED range hints issued
	Releases        atomic.Int64 // MADV_DONTNEED releases of retired mappings
	Evictions       atomic.Int64 // explicit Evict calls (tests, cold benches)
}

// PagingStats is the JSON-facing snapshot of a store's paging state:
// counter values, the live mapping's size and page residency, and the
// cost of the last snapshot open (header read + CRC + map).
type PagingStats struct {
	Policy          string  `json:"policy"`
	SequentialHints int64   `json:"sequential_hints"`
	WillNeedHints   int64   `json:"willneed_hints"`
	Releases        int64   `json:"releases"`
	Evictions       int64   `json:"evictions"`
	MappedBytes     int64   `json:"mapped_bytes"`
	ResidentPages   int     `json:"resident_pages,omitempty"`
	TotalPages      int     `json:"total_pages,omitempty"`
	SnapshotOpenMS  float64 `json:"snapshot_open_ms"`
	RetiredMappings int     `json:"retired_mappings,omitempty"`
}

// mapAdvisor implements graph.Advisor for one snapshot mapping. It is
// attached only when the graph actually aliases the mapping (mmap'd,
// 64-bit little-endian host); everywhere else the heap copy is what gets
// read and advice would be pointless.
type mapAdvisor struct {
	data     []byte // the whole mapping
	offsets  []int  // the adopted CSR offsets (alias into data)
	edgeBase int    // byte offset of the edges section within data
	counters *PagingCounters
}

func (a *mapAdvisor) Sequential() {
	a.counters.SequentialHints.Add(1)
	madviseSequential(a.data)
}

func (a *mapAdvisor) WillNeed(lo, hi int) {
	n := len(a.offsets) - 1
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if lo > hi {
		return
	}
	a.counters.WillNeedHints.Add(1)
	start := a.edgeBase + 8*a.offsets[lo]
	end := a.edgeBase + 8*a.offsets[hi+1]
	madviseWillNeed(pageSpan(a.data, start, end))
}

// pageSpan widens data[start:end) to page boundaries (the mapping base
// is page-aligned, so aligning the offsets aligns the addresses) and
// clamps to the mapping, as madvise requires.
func pageSpan(data []byte, start, end int) []byte {
	page := os.Getpagesize()
	start &^= page - 1
	end = (end + page - 1) &^ (page - 1)
	if end > len(data) {
		end = len(data)
	}
	if start >= end {
		return nil
	}
	return data[start:end]
}

// EnablePaging attaches a paging advisor to the snapshot's graph,
// reporting activity into counters. It is a no-op when the graph does
// not alias a real mapping (heap fallback platforms). The snapshot keeps
// the counters for its own Evict/release accounting.
func (s *Snapshot) EnablePaging(counters *PagingCounters) {
	s.counters = counters
	if !mmapSupported || !aliasable || len(s.data) == 0 {
		return
	}
	offsets, _ := s.g.Adjacency()
	s.g.SetAdvisor(&mapAdvisor{
		data:     s.data,
		offsets:  offsets,
		edgeBase: snapshotHeader + 8*len(offsets),
		counters: counters,
	})
}

// MappedBytes returns the size of the snapshot's backing region (mapped
// or heap-loaded).
func (s *Snapshot) MappedBytes() int64 { return int64(len(s.data)) }

// Residency probes how many pages of the mapping are resident. ok is
// false when the platform cannot tell (no mincore, heap fallback).
func (s *Snapshot) Residency() (resident, total int, ok bool) {
	if !mmapSupported || len(s.data) == 0 || !residency.Supported() {
		return 0, 0, false
	}
	r, t, err := residency.Resident(s.data)
	if err != nil {
		return 0, 0, false
	}
	return r, t, true
}

// ReleasePages drops the mapping's resident pages with MADV_DONTNEED.
// The mapping stays valid — a read simply faults the page back from the
// file — so it is safe on a retired snapshot that old readers may still
// hold. Best-effort, no-op off mmap platforms.
func (s *Snapshot) ReleasePages() {
	if !mmapSupported || len(s.data) == 0 {
		return
	}
	if s.counters != nil {
		s.counters.Releases.Add(1)
	}
	madviseDontNeed(s.data)
}

// Evict makes the snapshot cold: MADV_DONTNEED drops the mapping's
// resident pages, and (on Linux) posix_fadvise(DONTNEED) asks the kernel
// to drop the file's page cache too, so the next access is a real disk
// fault rather than a minor re-map. Cold-cache benchmarks and the
// eviction round-trip tests call this between iterations; it never
// invalidates the mapping.
func (s *Snapshot) Evict() error {
	if !mmapSupported || len(s.data) == 0 {
		return nil
	}
	if s.counters != nil {
		s.counters.Evictions.Add(1)
	}
	madviseDontNeed(s.data)
	f, err := os.Open(s.path)
	if err != nil {
		// The file may have been renamed over (retired snapshot); the
		// madvise above already released the pages we can reach.
		return nil
	}
	defer f.Close()
	return dropFileCache(f)
}
