package gen

import (
	"fmt"
	"math/rand"

	"kvcc/graph"
)

// Community-structured random graphs sized for the beyond-RAM serving
// benchmarks: consecutive blocks of communitySize vertices form dense
// communities (where the k-VCCs live), laced with a sparse background of
// cross-community edges. Vertex ids follow block order, so the CSR
// adjacency of a community is one local stretch of the flat edge array —
// the locality that makes paging-aware access order measurable, and the
// layout a relabeling pass would produce on a real dataset.
const (
	communitySize  = 64
	communityIntra = 0.85 // fraction of edges drawn inside a block
)

// communityEdges replays the deterministic edge stream of Community: a
// fresh generator per call, so the counting and placement passes of the
// CSR builder see the identical sequence. Self-loops and duplicates may
// be emitted; the builder drops them.
func communityEdges(n, m int, seed int64, emit func(u, v int64)) {
	rng := rand.New(rand.NewSource(seed))
	numComm := (n + communitySize - 1) / communitySize
	for i := 0; i < m; i++ {
		if rng.Float64() < communityIntra {
			c := rng.Intn(numComm)
			lo := c * communitySize
			size := communitySize
			if lo+size > n {
				size = n - lo
			}
			emit(int64(lo+rng.Intn(size)), int64(lo+rng.Intn(size)))
		} else {
			emit(int64(rng.Intn(n)), int64(rng.Intn(n)))
		}
	}
}

// Community returns the community-structured graph for (n, m, seed):
// up to m distinct edges (self-loops and collisions are dropped) over n
// vertices with labels 0..n-1 equal to ids. Deterministic in all three
// parameters. Construction is two passes of the replayable stream
// through a CSRBuilder, so peak memory is the graph itself — no edge
// list — which is what lets the benchmarks generate graphs near the
// memory budget they then serve under.
func Community(n, m int, seed int64) *graph.Graph {
	if n < 2 || m < 1 {
		panic(fmt.Sprintf("gen: bad Community parameters n=%d m=%d", n, m))
	}
	b := graph.NewCSRBuilder()
	for v := 0; v < n; v++ {
		b.InternVertex(int64(v))
	}
	communityEdges(n, m, seed, func(u, v int64) { b.CountEdge(u, v) })
	b.BeginPlacement()
	communityEdges(n, m, seed, func(u, v int64) { b.PlaceEdge(u, v) })
	g, err := b.Build()
	if err != nil {
		// The two passes replay one deterministic stream; divergence is a
		// generator bug, not an input condition.
		panic(fmt.Sprintf("gen: community build: %v", err))
	}
	return g
}

// To put a generated graph on disk, pair Community with the store
// package: store.WriteSnapshot(path, gen.Community(n, m, seed), 1).
// gen deliberately does not import store — test and bench files across
// the repo import gen, and a gen→store edge would close a cycle through
// their packages.
