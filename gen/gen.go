// Package gen generates the synthetic graphs used to reproduce the paper's
// evaluation. The module is offline, so the seven SNAP datasets are
// replaced by deterministic generators calibrated to each dataset's
// character (see docs/DESIGN.md, "Substitutions"): random graphs, preferential
// attachment, a web-crawl copying model, planted dense communities with
// sub-k overlaps (the structure k-VCC enumeration is designed to recover),
// and collaboration ego networks for the Fig. 14 case study.
//
// Every generator is a pure function of its configuration including the
// seed, so experiments are exactly reproducible.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"kvcc/graph"
)

// GNM returns a uniform random simple graph with n vertices and (up to) m
// distinct edges.
func GNM(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	seen := make(map[[2]int]bool, m)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return graph.FromEdges(n, edges)
}

// GNP returns an Erdős–Rényi G(n,p) graph.
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// clique on m0 vertices, each new vertex attaches to mPer existing
// vertices chosen proportionally to degree. Produces the heavy-tailed
// degree distributions of citation and social graphs.
func BarabasiAlbert(n, m0, mPer int, seed int64) *graph.Graph {
	if m0 < 2 || mPer < 1 || mPer > m0 || n < m0 {
		panic(fmt.Sprintf("gen: bad BarabasiAlbert parameters n=%d m0=%d mPer=%d", n, m0, mPer))
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	// Repeated-endpoint list for proportional sampling.
	var targets []int
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			edges = append(edges, [2]int{i, j})
			targets = append(targets, i, j)
		}
	}
	chosen := make(map[int]bool, mPer)
	for v := m0; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		for len(chosen) < mPer {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		// Drain in sorted order: map iteration order would leak into the
		// targets list and break determinism.
		for _, u := range sortedKeys(chosen) {
			edges = append(edges, [2]int{u, v})
			targets = append(targets, u, v)
		}
	}
	return graph.FromEdges(n, edges)
}

// WebGraph grows a copying-model graph: each new page links to outDeg
// targets; with probability copyProb a target is copied from the link list
// of a random earlier page (creating hubs and dense local clusters, the
// signature of web crawls like Stanford/Cnr/ND).
func WebGraph(n, outDeg int, copyProb float64, seed int64) *graph.Graph {
	if n < 2 || outDeg < 1 {
		panic("gen: bad WebGraph parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	adjacency := make([][]int, n)
	var edges [][2]int
	for v := 1; v < n; v++ {
		d := outDeg
		if d > v {
			d = v
		}
		chosen := map[int]bool{}
		for len(chosen) < d {
			var u int
			if rng.Float64() < copyProb && v > 1 {
				// Copy a link from a random earlier page.
				proto := rng.Intn(v)
				if len(adjacency[proto]) > 0 {
					u = adjacency[proto][rng.Intn(len(adjacency[proto]))]
				} else {
					u = proto
				}
			} else {
				u = rng.Intn(v)
			}
			if u != v {
				chosen[u] = true
			}
		}
		for _, u := range sortedKeys(chosen) {
			edges = append(edges, [2]int{u, v})
			adjacency[v] = append(adjacency[v], u)
			adjacency[u] = append(adjacency[u], v)
		}
	}
	return graph.FromEdges(n, edges)
}

func sortedKeys(set map[int]bool) []int {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SampleVertices returns the subgraph induced by a uniform sample of
// round(frac*n) vertices (the paper's Fig. 13 "vary |V|" protocol).
func SampleVertices(g *graph.Graph, frac float64, seed int64) *graph.Graph {
	n := g.NumVertices()
	keep := int(frac*float64(n) + 0.5)
	if keep >= n {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return g.InducedSubgraph(perm[:keep])
}

// SampleEdges returns the graph on a uniform sample of round(frac*m)
// edges, with the incident vertices as the vertex set (the paper's Fig. 13
// "vary |E|" protocol).
func SampleEdges(g *graph.Graph, frac float64, seed int64) *graph.Graph {
	all := g.Edges(nil)
	keep := int(frac*float64(len(all)) + 0.5)
	if keep >= len(all) {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	b := graph.NewBuilder(g.NumVertices())
	for _, e := range all[:keep] {
		b.AddEdge(g.Label(e[0]), g.Label(e[1]))
	}
	return b.Build()
}
