package gen

import (
	"fmt"
	"math/rand"

	"kvcc/graph"
)

// PlantedConfig describes a graph with planted dense communities — the
// ground-truth workload for k-VCC enumeration. Communities are dense
// random blocks; consecutive communities may be chained by sharing a small
// vertex overlap (below the k of interest, so they remain separate
// k-VCCs), pairs of communities may be joined by loose bridge edges (the
// free-rider pattern of Fig. 1), and the whole structure is embedded in a
// sparse background that k-core reduction strips away.
type PlantedConfig struct {
	Communities   int     // number of dense blocks
	MinSize       int     // smallest block size
	MaxSize       int     // largest block size
	IntraProb     float64 // edge probability inside a block
	ChainOverlap  int     // vertices shared between chained neighbors (0 = disjoint)
	ChainEvery    int     // chain every i-th community to its predecessor (0 = never)
	BridgeEdges   int     // loose edges between random distinct blocks
	NoiseVertices int     // background vertices
	NoiseDegree   int     // average degree of the background
	Seed          int64
}

// Planted generates the graph along with the planted community vertex
// label sets (ground truth for recovery experiments).
func Planted(cfg PlantedConfig) (*graph.Graph, [][]int64) {
	if cfg.Communities < 1 || cfg.MinSize < 2 || cfg.MaxSize < cfg.MinSize {
		panic(fmt.Sprintf("gen: bad PlantedConfig %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var edges [][2]int
	var communities [][]int64
	next := 0
	var prev []int
	for c := 0; c < cfg.Communities; c++ {
		size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		vs := make([]int, size)
		start := 0
		chained := cfg.ChainEvery > 0 && c%cfg.ChainEvery == cfg.ChainEvery-1 &&
			prev != nil && cfg.ChainOverlap > 0 && cfg.ChainOverlap < len(prev) && cfg.ChainOverlap < size
		if chained {
			copy(vs, prev[len(prev)-cfg.ChainOverlap:])
			start = cfg.ChainOverlap
		}
		for i := start; i < size; i++ {
			vs[i] = next
			next++
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < cfg.IntraProb {
					edges = append(edges, [2]int{vs[i], vs[j]})
				}
			}
		}
		labels := make([]int64, size)
		for i, v := range vs {
			labels[i] = int64(v)
		}
		communities = append(communities, labels)
		prev = vs
	}
	communityVertices := next
	// Bridge edges between random distinct communities (free riders).
	for b := 0; b < cfg.BridgeEdges && cfg.Communities > 1; b++ {
		ci := rng.Intn(len(communities))
		cj := rng.Intn(len(communities))
		if ci == cj {
			continue
		}
		u := communities[ci][rng.Intn(len(communities[ci]))]
		v := communities[cj][rng.Intn(len(communities[cj]))]
		if u != v {
			edges = append(edges, [2]int{int(u), int(v)})
		}
	}
	// Sparse background noise attached to everything.
	n := communityVertices + cfg.NoiseVertices
	if cfg.NoiseVertices > 0 && cfg.NoiseDegree > 0 {
		for v := communityVertices; v < n; v++ {
			d := 1 + rng.Intn(2*cfg.NoiseDegree)
			for i := 0; i < d; i++ {
				u := rng.Intn(n)
				if u != v {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
	}
	if n == 0 {
		n = communityVertices
	}
	return graph.FromEdges(n, edges), communities
}

// EgoNetConfig describes a synthetic collaboration ego network for the
// Fig. 14 case study: a hub author adjacent to everyone, dense research
// groups among the hub's neighbors, core authors shared between adjacent
// groups, and bridging authors who co-author across several groups without
// belonging to any (they appear in the k-ECC and the k-core but in no
// k-VCC).
type EgoNetConfig struct {
	Groups        int
	GroupMin      int
	GroupMax      int
	IntraProb     float64
	SharedAuthors int // authors who belong to two consecutive groups
	Bridges       int // authors spread thinly across >= 3 groups
	Seed          int64
}

// EgoNet holds the generated case-study network.
type EgoNet struct {
	Graph *graph.Graph
	// Hub is the label of the ego vertex (the "prolific author").
	Hub int64
	// Groups are the planted research groups (vertex labels, without the
	// hub or bridges).
	Groups [][]int64
	// Bridges are the labels of the bridging authors.
	Bridges []int64
	// Names maps labels to generated author names.
	Names map[int64]string
}

// CollaborationEgoNet generates the Fig. 14 workload.
func CollaborationEgoNet(cfg EgoNetConfig) *EgoNet {
	if cfg.Groups < 2 || cfg.GroupMin < 4 || cfg.GroupMax < cfg.GroupMin {
		panic(fmt.Sprintf("gen: bad EgoNetConfig %+v", cfg))
	}
	if cfg.Bridges > 0 && cfg.Groups < 3 {
		panic("gen: EgoNetConfig bridges need at least 3 groups")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const hub = 0
	next := 1
	var edges [][2]int
	var groups [][]int64
	var prevTail []int
	for gi := 0; gi < cfg.Groups; gi++ {
		size := cfg.GroupMin + rng.Intn(cfg.GroupMax-cfg.GroupMin+1)
		vs := make([]int, 0, size)
		if gi > 0 && cfg.SharedAuthors > 0 && cfg.SharedAuthors < len(prevTail) {
			vs = append(vs, prevTail[len(prevTail)-cfg.SharedAuthors:]...)
		}
		for len(vs) < size {
			vs = append(vs, next)
			next++
		}
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if rng.Float64() < cfg.IntraProb {
					edges = append(edges, [2]int{vs[i], vs[j]})
				}
			}
		}
		labels := make([]int64, len(vs))
		for i, v := range vs {
			labels[i] = int64(v)
			edges = append(edges, [2]int{hub, v}) // ego network: hub knows all
		}
		groups = append(groups, labels)
		prevTail = vs
	}
	var bridges []int64
	for b := 0; b < cfg.Bridges; b++ {
		v := next
		next++
		bridges = append(bridges, int64(v))
		edges = append(edges, [2]int{hub, v})
		// Co-author with exactly one member of three groups. Bridges take
		// disjoint group triples (3b, 3b+1, 3b+2 mod Groups) so that each
		// group's separating cut {hub, shared authors, its one bridge}
		// stays below k=4 — the Fig. 14 configuration where the bridging
		// author survives the 4-core and the 4-ECC but joins no 4-VCC.
		for j := 0; j < 3; j++ {
			g := groups[(3*b+j)%len(groups)]
			edges = append(edges, [2]int{v, int(g[rng.Intn(len(g))])})
		}
	}
	g := graph.FromEdges(next, edges)
	names := make(map[int64]string, next)
	names[hub] = "prolific-author"
	for gi, grp := range groups {
		for ai, l := range grp {
			if _, ok := names[l]; !ok {
				names[l] = fmt.Sprintf("author-g%d-%02d", gi, ai)
			} else {
				names[l] = fmt.Sprintf("core-author-%d", l) // shared between groups
			}
		}
	}
	for bi, l := range bridges {
		names[l] = fmt.Sprintf("bridging-author-%d", bi)
	}
	return &EgoNet{Graph: g, Hub: hub, Groups: groups, Bridges: bridges, Names: names}
}
