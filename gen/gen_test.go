package gen

import (
	"fmt"
	"testing"
)

func TestGNMDeterministicAndSized(t *testing.T) {
	g1 := GNM(100, 300, 7)
	g2 := GNM(100, 300, 7)
	if g1.NumVertices() != 100 || g1.NumEdges() != 300 {
		t.Fatalf("GNM size: n=%d m=%d", g1.NumVertices(), g1.NumEdges())
	}
	if fmt.Sprint(g1.Edges(nil)) != fmt.Sprint(g2.Edges(nil)) {
		t.Fatal("GNM not deterministic for equal seeds")
	}
	g3 := GNM(100, 300, 8)
	if fmt.Sprint(g1.Edges(nil)) == fmt.Sprint(g3.Edges(nil)) {
		t.Fatal("GNM identical across different seeds")
	}
}

func TestGNMCapsAtCompleteGraph(t *testing.T) {
	g := GNM(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("GNM(5,100) edges = %d, want 10", g.NumEdges())
	}
}

func TestGNP(t *testing.T) {
	g := GNP(50, 0.5, 3)
	if g.NumVertices() != 50 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Expected ~612 edges; allow a broad band.
	if g.NumEdges() < 400 || g.NumEdges() > 850 {
		t.Fatalf("GNP(50,0.5) edges = %d, outside plausible band", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(200, 4, 3, 5)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// m = C(4,2) + 196*3.
	want := 6 + 196*3
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// Heavy tail: max degree well above the mean.
	if g.MaxDegree() < 3*int(g.AverageDegree()) {
		t.Fatalf("BA max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), g.AverageDegree())
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BarabasiAlbert(10, 2, 3, 0) // mPer > m0
}

func TestWebGraph(t *testing.T) {
	g := WebGraph(500, 5, 0.6, 9)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Fatal("web graph must be connected")
	}
	if g.MaxDegree() < 2*int(g.AverageDegree()) {
		t.Fatalf("web graph lacks hubs: max %d avg %.1f", g.MaxDegree(), g.AverageDegree())
	}
	// Determinism.
	g2 := WebGraph(500, 5, 0.6, 9)
	if fmt.Sprint(g.Edges(nil)) != fmt.Sprint(g2.Edges(nil)) {
		t.Fatal("WebGraph not deterministic")
	}
}

func TestSampleVertices(t *testing.T) {
	g := GNM(200, 800, 2)
	s := SampleVertices(g, 0.5, 1)
	if s.NumVertices() != 100 {
		t.Fatalf("sampled n = %d, want 100", s.NumVertices())
	}
	if s.NumEdges() >= g.NumEdges() {
		t.Fatal("vertex sampling should lose edges")
	}
	full := SampleVertices(g, 1.0, 1)
	if full != g {
		t.Fatal("frac 1.0 must return the original graph")
	}
	// Sampled graph is an induced subgraph: every sampled edge exists in g.
	idx := g.LabelIndex()
	for _, e := range s.Edges(nil) {
		u, v := idx[s.Label(e[0])], idx[s.Label(e[1])]
		if !g.HasEdge(u, v) {
			t.Fatal("sample contains edge missing from source")
		}
	}
}

func TestSampleEdges(t *testing.T) {
	g := GNM(200, 800, 2)
	s := SampleEdges(g, 0.25, 1)
	if s.NumEdges() != 200 {
		t.Fatalf("sampled m = %d, want 200", s.NumEdges())
	}
	if s.NumVertices() > g.NumVertices() {
		t.Fatal("edge sample has too many vertices")
	}
	// Vertex set = incident vertices only: no isolated vertices.
	for v := 0; v < s.NumVertices(); v++ {
		if s.Degree(v) == 0 {
			t.Fatal("edge sample contains isolated vertex")
		}
	}
}

func TestPlantedStructure(t *testing.T) {
	cfg := PlantedConfig{
		Communities: 10, MinSize: 10, MaxSize: 16, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 5,
		NoiseVertices: 200, NoiseDegree: 2, Seed: 11,
	}
	g, comms := Planted(cfg)
	if len(comms) != 10 {
		t.Fatalf("communities = %d", len(comms))
	}
	if g.NumVertices() < 200 {
		t.Fatalf("n = %d, expected community + noise vertices", g.NumVertices())
	}
	// Deterministic.
	g2, _ := Planted(cfg)
	if fmt.Sprint(g.Edges(nil)) != fmt.Sprint(g2.Edges(nil)) {
		t.Fatal("Planted not deterministic")
	}
	// Communities are dense: check internal average degree of the first.
	idx := g.LabelIndex()
	for _, comm := range comms[:3] {
		vs := make([]int, len(comm))
		for i, l := range comm {
			vs[i] = idx[l]
		}
		sub := g.InducedSubgraph(vs)
		if sub.AverageDegree() < 0.6*float64(len(comm)-1) {
			t.Fatalf("community too sparse: avg degree %.1f of %d", sub.AverageDegree(), len(comm)-1)
		}
	}
}

func TestPlantedChainOverlap(t *testing.T) {
	cfg := PlantedConfig{
		Communities: 4, MinSize: 8, MaxSize: 8, IntraProb: 1.0,
		ChainOverlap: 2, ChainEvery: 1, Seed: 3,
	}
	_, comms := Planted(cfg)
	for i := 1; i < len(comms); i++ {
		shared := 0
		prev := map[int64]bool{}
		for _, l := range comms[i-1] {
			prev[l] = true
		}
		for _, l := range comms[i] {
			if prev[l] {
				shared++
			}
		}
		if shared != 2 {
			t.Fatalf("chain overlap between %d and %d = %d, want 2", i-1, i, shared)
		}
	}
}

func TestPlantedPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Planted(PlantedConfig{Communities: 0})
}

func TestCollaborationEgoNet(t *testing.T) {
	net := CollaborationEgoNet(EgoNetConfig{
		Groups: 5, GroupMin: 6, GroupMax: 9, IntraProb: 0.9,
		SharedAuthors: 2, Bridges: 2, Seed: 21,
	})
	g := net.Graph
	if !g.IsConnected() {
		t.Fatal("ego net must be connected")
	}
	hub := g.IndexOfLabel(net.Hub)
	if hub < 0 {
		t.Fatal("hub missing")
	}
	if g.Degree(hub) != g.NumVertices()-1 {
		t.Fatalf("hub degree %d, want %d (adjacent to all)", g.Degree(hub), g.NumVertices()-1)
	}
	if len(net.Groups) != 5 || len(net.Bridges) != 2 {
		t.Fatalf("groups=%d bridges=%d", len(net.Groups), len(net.Bridges))
	}
	if net.Names[net.Hub] == "" {
		t.Fatal("hub must be named")
	}
	for _, b := range net.Bridges {
		if net.Names[b] == "" {
			t.Fatal("bridge authors must be named")
		}
	}
	// Consecutive groups share exactly SharedAuthors vertices.
	prev := map[int64]bool{}
	for _, l := range net.Groups[0] {
		prev[l] = true
	}
	shared := 0
	for _, l := range net.Groups[1] {
		if prev[l] {
			shared++
		}
	}
	if shared != 2 {
		t.Fatalf("shared authors between groups 0,1 = %d, want 2", shared)
	}
}

func TestCollaborationEgoNetDeterministic(t *testing.T) {
	cfg := EgoNetConfig{Groups: 4, GroupMin: 5, GroupMax: 8, IntraProb: 0.85, SharedAuthors: 1, Bridges: 1, Seed: 5}
	a := CollaborationEgoNet(cfg)
	b := CollaborationEgoNet(cfg)
	if fmt.Sprint(a.Graph.Edges(nil)) != fmt.Sprint(b.Graph.Edges(nil)) {
		t.Fatal("ego net not deterministic")
	}
}
