// Command kvccd is the long-running k-VCC enumeration service. It loads
// one or more named edge-list graphs, serves the HTTP/JSON query API from
// the server package, and amortizes enumeration cost across queries with
// a per-graph hierarchy index, an LRU result cache, and in-flight request
// deduplication.
//
// Usage:
//
//	kvccd -graph social=social.txt -graph web=web.txt [-addr :7474]
//	      [-cache 64] [-max-k 0] [-parallel 1] [-index] [-index-max-k 0]
//	      [-index-measures kvcc] [-engine auto] [-seed 0]
//	      [-request-timeout 30s] [-compute-timeout 5m] [-max-timeout 0]
//	      [-max-inflight 0] [-quota rps[:burst]] [-drain-timeout 10s]
//	      [-data-dir DIR] [-checkpoint-every 0] [-paging auto]
//	      [-demo] [-selftest]
//
// -graph name=path registers an edge list under a query name and may be
// repeated; files are ingested through graphio's two-pass streaming
// loader, which builds the CSR graph in place so multi-million-edge SNAP
// exports load with bounded memory. -index precomputes the full k-VCC cohesion tree of every
// graph in the background at startup; once ready, enumerate queries for
// any k are answered from the tree instead of running the algorithm
// (hierarchy and cohesion queries build the index on demand either way).
// -index-max-k truncates that tree at a level when only shallow queries
// matter. -engine selects the max-flow engine behind every enumeration
// (auto | dinic | ek | local; all return identical results) and -seed
// fixes the randomized local engine's seed — purely performance knobs.
// -demo registers a small generated community graph under the
// name "demo" so the server can be tried without any dataset. -selftest
// starts the server on an ephemeral port, drives every endpoint through
// the Go client (verifying that a repeated query is a cache hit and that
// the hierarchy index serves an uncached k), prints a transcript, and
// exits; it is both a smoke test and a usage example.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
	"kvcc/server"
	"kvcc/store"
)

// graphFlags collects repeated -graph name=path mappings.
type graphFlags map[string]string

func (g graphFlags) String() string {
	parts := make([]string, 0, len(g))
	for name, path := range g {
		parts = append(parts, name+"="+path)
	}
	return strings.Join(parts, ",")
}

func (g graphFlags) Set(value string) error {
	name, path, ok := strings.Cut(value, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", value)
	}
	if _, dup := g[name]; dup {
		return fmt.Errorf("graph %q registered twice", name)
	}
	g[name] = path
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvccd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphs := graphFlags{}
	fs.Var(graphs, "graph", "name=path of an edge list to serve (repeatable)")
	var (
		addr            = fs.String("addr", ":7474", "listen address")
		cacheSize       = fs.Int("cache", 64, "result cache capacity (entries)")
		maxK            = fs.Int("max-k", 0, "reject queries with k above this (0 = no limit)")
		parallel        = fs.Int("parallel", 1, "enumeration worker count")
		index           = fs.Bool("index", false, "precompute the hierarchy index of every graph at startup")
		indexMaxK       = fs.Int("index-max-k", 0, "truncate hierarchy index builds at this level (0 = full depth)")
		indexMeasures   = fs.String("index-measures", "kvcc", "comma-separated cohesion measures to index eagerly with -index: kvcc | kecc | kcore")
		engine          = fs.String("engine", "auto", "max-flow engine: auto | dinic | ek | local (results are identical)")
		seed            = fs.Uint64("seed", 0, "seed for the randomized local cut engine (0 = fixed default)")
		requestTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request wait ceiling")
		computeTimeout  = fs.Duration("compute-timeout", 5*time.Minute, "per-enumeration ceiling")
		demo            = fs.Bool("demo", false, `also serve a generated community graph as "demo"`)
		selftest        = fs.Bool("selftest", false, "start on an ephemeral port, exercise every endpoint, exit")
		dataDir         = fs.String("data-dir", "", "durable store directory: graphs survive restarts via snapshot + WAL (empty = in-memory only)")
		checkpointEvery = fs.Int("checkpoint-every", 0, "fold the WAL into a fresh snapshot after this many edit batches (0 = default 32, negative = never)")
		maxInflight     = fs.Int("max-inflight", 0, "concurrent expensive enumerations before requests queue and shed (0 = GOMAXPROCS)")
		quota           = fs.String("quota", "", "per-tenant admission quota as rps[:burst], keyed by X-API-Key (empty = no quotas)")
		drainTimeout    = fs.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM/SIGINT shutdown waits for in-flight requests")
		maxTimeout      = fs.Duration("max-timeout", 0, "ceiling for client-supplied timeout_ms; larger values are clamped (0 = request-timeout)")
		paging          = fs.String("paging", "auto", "madvise policy for mmap'd snapshots with -data-dir: auto | off")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// With -data-dir, graphs may come from recovery alone — the emptiness
	// check happens after server.Open, once we know what was recovered.
	if len(graphs) == 0 && !*demo && !*selftest && *dataDir == "" {
		fmt.Fprintln(stderr, "kvccd: no graphs to serve; pass -graph name=path, -demo, or -data-dir")
		fs.Usage()
		return 2
	}
	// server.New degrades unknown engine names to auto; a daemon should
	// fail loudly on a typo instead, so validate the flag up front.
	if _, err := server.ParseFlowEngine(*engine); err != nil {
		fmt.Fprintln(stderr, "kvccd: -engine:", err)
		return 2
	}
	// Same for measures: server.New skips unknown names silently.
	measures := strings.Split(*indexMeasures, ",")
	for _, m := range measures {
		if _, err := kvcc.ParseMeasure(strings.TrimSpace(m)); err != nil {
			fmt.Fprintln(stderr, "kvccd: -index-measures:", err)
			return 2
		}
	}

	quotaRPS, quotaBurst, err := parseQuota(*quota)
	if err != nil {
		fmt.Fprintln(stderr, "kvccd: -quota:", err)
		return 2
	}

	pagingPolicy, err := store.ParsePagingPolicy(*paging)
	if err != nil {
		fmt.Fprintln(stderr, "kvccd: -paging:", err)
		return 2
	}

	cfg := server.Config{
		CacheSize:       *cacheSize,
		MaxK:            *maxK,
		Parallelism:     *parallel,
		RequestTimeout:  *requestTimeout,
		ComputeTimeout:  *computeTimeout,
		BuildIndex:      *index,
		IndexMaxK:       *indexMaxK,
		IndexMeasures:   measures,
		FlowEngine:      *engine,
		Seed:            *seed,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		MaxInflight:     *maxInflight,
		QuotaRPS:        quotaRPS,
		QuotaBurst:      quotaBurst,
		MaxTimeout:      *maxTimeout,
		PagingPolicy:    pagingPolicy,
	}
	// With -data-dir, Open recovers every previously served graph from its
	// snapshot + WAL before any file ingestion: a restart serves the exact
	// pre-crash state without re-reading edge lists. Graphs re-registered
	// by -graph below simply replace their recovered versions.
	srv, err := server.Open(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "kvccd:", err)
		return 1
	}
	recovered := make(map[string]bool)
	for _, info := range srv.Graphs() {
		recovered[info.Name] = true
	}
	for name, path := range graphs {
		if err := srv.LoadGraphFile(name, path); err != nil {
			fmt.Fprintln(stderr, "kvccd:", err)
			return 1
		}
	}
	if (*demo || (*selftest && len(graphs) == 0)) && !recovered["demo"] {
		srv.AddGraph("demo", demoGraph())
	}
	if len(srv.Graphs()) == 0 && !*selftest {
		fmt.Fprintf(stderr, "kvccd: nothing to serve: no -graph/-demo flags and the data dir %q holds no recoverable graphs\n", *dataDir)
		return 2
	}
	for _, info := range srv.Graphs() {
		how := ""
		if recovered[info.Name] {
			how = " (recovered from data dir)"
		}
		fmt.Fprintf(stdout, "kvccd: serving %q: %d vertices, %d edges, version %d%s\n",
			info.Name, info.Vertices, info.Edges, info.Version, how)
	}

	if *selftest {
		if code := runSelfTest(srv, *indexMaxK, stdout, stderr); code != 0 {
			return code
		}
		return runPersistSelfTest(cfg, stdout, stderr)
	}

	httpServer := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound header reads and idle keep-alives so slow or stalled
		// clients cannot pin connections open; per-request work is
		// bounded separately by the server's request timeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(stdout, "kvccd: listening on %s\n", *addr)

	// Graceful shutdown: the first SIGTERM/SIGINT flips the server into
	// draining (new admissions shed with 503, healthz reports draining so
	// load balancers stop routing here), then in-flight requests get up to
	// -drain-timeout to finish before the listener is torn down and the
	// stores are closed. A second signal falls back to the runtime's
	// default handling and kills the process immediately.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "kvccd:", err)
			return 1
		}
		return 0
	case <-sigCtx.Done():
	}
	stop()
	fmt.Fprintf(stdout, "kvccd: shutdown signal received; draining for up to %s\n", *drainTimeout)
	srv.BeginDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "kvccd: drain timeout exceeded; closing with requests in flight:", err)
		httpServer.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "kvccd:", err)
		return 1
	}
	fmt.Fprintln(stdout, "kvccd: shutdown complete")
	return 0
}

// parseQuota parses the -quota flag: "rps" or "rps:burst". An empty value
// disables quotas.
func parseQuota(raw string) (rps float64, burst int, err error) {
	if raw == "" {
		return 0, 0, nil
	}
	rpsPart, burstPart, hasBurst := strings.Cut(raw, ":")
	rps, err = strconv.ParseFloat(rpsPart, 64)
	if err != nil || rps <= 0 {
		return 0, 0, fmt.Errorf("want rps[:burst] with rps > 0, got %q", raw)
	}
	if hasBurst {
		burst, err = strconv.Atoi(burstPart)
		if err != nil || burst <= 0 {
			return 0, 0, fmt.Errorf("want rps[:burst] with burst > 0, got %q", raw)
		}
	}
	return rps, burst, nil
}

// demoGraph builds a deterministic planted-community graph: eight dense
// blocks chained by sub-k overlaps plus background noise, the structure
// k-VCC enumeration is designed to recover.
func demoGraph() *graph.Graph {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities:   8,
		MinSize:       12,
		MaxSize:       20,
		IntraProb:     0.7,
		ChainOverlap:  2,
		ChainEvery:    2,
		BridgeEdges:   6,
		NoiseVertices: 120,
		NoiseDegree:   3,
		Seed:          1,
	})
	return g
}

// runSelfTest drives every endpoint through the client against a live
// listener and verifies the cache actually short-circuits repeat queries.
// indexMaxK mirrors the -index-max-k flag: a truncated index is expected
// to be incomplete and only serves levels up to the cap, so the
// index-served probe adapts accordingly.
func runSelfTest(srv *server.Server, indexMaxK int, stdout, stderr io.Writer) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, "kvccd: selftest:", err)
		return 1
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	go httpServer.Serve(ln)
	defer httpServer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := server.NewClient("http://" + ln.Addr().String())

	fail := func(step string, err error) int {
		fmt.Fprintf(stderr, "kvccd: selftest: %s: %v\n", step, err)
		return 1
	}

	if err := client.Health(ctx); err != nil {
		return fail("health", err)
	}
	infos, err := client.Graphs(ctx)
	if err != nil || len(infos) == 0 {
		return fail("graphs", err)
	}
	// k = 5 resolves the demo graph into its planted communities (k = 4
	// still merges them across the sub-k chain overlaps).
	name := infos[0].Name
	const k = 5

	first, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: k, IncludeMetrics: true})
	if err != nil {
		return fail("enumerate", err)
	}
	fmt.Fprintf(stdout, "selftest: %d-VCCs of %q: %d components in %.1fms (cached=%v)\n",
		k, name, len(first.Components), first.ElapsedMS, first.Cached)

	// A repeat must be answered without re-running the algorithm: from the
	// cache, or — when the index build already finished (with -index it
	// can even beat the first query) — from the hierarchy index.
	second, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: k})
	if err != nil {
		return fail("enumerate (repeat)", err)
	}
	switch {
	case second.Cached:
		fmt.Fprintf(stdout, "selftest: repeat query served from cache in %.3fms\n", second.ElapsedMS)
	case second.IndexServed:
		fmt.Fprintf(stdout, "selftest: repeat query served from the hierarchy index in %.3fms\n", second.ElapsedMS)
	default:
		return fail("cache", fmt.Errorf("repeated query was recomputed"))
	}

	if len(first.Components) > 0 {
		v := first.Components[0].Vertices[0]
		containing, err := client.ComponentsContaining(ctx, server.ContainingRequest{Graph: name, K: k, Vertex: v})
		if err != nil {
			return fail("components-containing", err)
		}
		fmt.Fprintf(stdout, "selftest: vertex %d is in component(s) %v\n", v, containing.Indices)

		overlap, err := client.Overlap(ctx, server.OverlapRequest{Graph: name, K: k})
		if err != nil {
			return fail("overlap", err)
		}
		fmt.Fprintf(stdout, "selftest: overlap matrix is %dx%d\n", len(overlap.Matrix), len(overlap.Matrix))
	}

	// Hierarchy index: the request blocks until the background (or
	// on-demand) build finishes, after which any uncached k must be
	// served from the tree rather than enumerated.
	hier, err := client.Hierarchy(ctx, server.HierarchyRequest{Graph: name})
	if err != nil {
		return fail("hierarchy", err)
	}
	fmt.Fprintf(stdout, "selftest: hierarchy of %q: max k=%d, %d components across %d levels (built in %.1fms)\n",
		name, hier.MaxK, hier.Size, len(hier.Levels), hier.BuildMS)
	if indexMaxK == 0 && !hier.Complete {
		return fail("hierarchy", fmt.Errorf("full-depth index build reported incomplete"))
	}

	// Probe a k the (possibly truncated) index must cover: one past the
	// query k for a full-depth build, otherwise a level within the cap.
	probe := k + 1
	if indexMaxK > 0 && probe > hier.MaxK {
		probe = 2
	}
	indexed, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: probe})
	if err != nil {
		return fail("enumerate (indexed)", err)
	}
	if !indexed.IndexServed {
		return fail("index", fmt.Errorf("k=%d was not served from the hierarchy index", probe))
	}
	fmt.Fprintf(stdout, "selftest: %d-VCCs served from the index in %.3fms (%d components)\n",
		probe, indexed.ElapsedMS, len(indexed.Components))

	if len(first.Components) > 0 {
		v := first.Components[0].Vertices[0]
		coh, err := client.Cohesion(ctx, server.CohesionRequest{Graph: name, Vertices: []int64{v}})
		if err != nil {
			return fail("cohesion", err)
		}
		// A truncated index cannot see cohesion past its cap.
		wantAtLeast := k
		if indexMaxK > 0 && indexMaxK < k {
			wantAtLeast = indexMaxK
		}
		if len(coh.Results) != 1 || coh.Results[0].Cohesion < wantAtLeast {
			return fail("cohesion", fmt.Errorf("vertex %d in a %d-VCC reports cohesion %d",
				v, k, coh.Results[0].Cohesion))
		}
		fmt.Fprintf(stdout, "selftest: vertex %d has cohesion %d (nesting chain of %d components)\n",
			v, coh.Results[0].Cohesion, len(coh.Results[0].Path))
	}

	// Cohesion suite: the same k served under all three measures, which
	// must nest — every k-VCC inside some k-ECC inside some k-core
	// component (Whitney: κ ≤ λ ≤ δ).
	kecc, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: k, Measure: "kecc"})
	if err != nil {
		return fail("enumerate (kecc)", err)
	}
	kcore, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: k, Measure: "kcore"})
	if err != nil {
		return fail("enumerate (kcore)", err)
	}
	if err := checkNesting(first.Components, kecc.Components, "k-ECC"); err != nil {
		return fail("nesting", err)
	}
	if err := checkNesting(kecc.Components, kcore.Components, "k-core component"); err != nil {
		return fail("nesting", err)
	}
	fmt.Fprintf(stdout, "selftest: %d kvcc ⊆ %d kecc ⊆ %d kcore components at k=%d (nesting holds)\n",
		len(first.Components), len(kecc.Components), len(kcore.Components), k)

	// A repeated non-default-measure query must ride the same ladder.
	keccRepeat, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: k, Measure: "kecc"})
	if err != nil {
		return fail("enumerate (kecc repeat)", err)
	}
	if !keccRepeat.Cached && !keccRepeat.IndexServed {
		return fail("cache (kecc)", fmt.Errorf("repeated kecc query was recomputed"))
	}
	fmt.Fprintf(stdout, "selftest: repeat kecc query served without recomputation (cached=%v index=%v)\n",
		keccRepeat.Cached, keccRepeat.IndexServed)

	// Profile: structural summary plus per-vertex (core, λ, κ) for a
	// community vertex, which must be consistent with the k-VCC above.
	if len(first.Components) > 0 {
		v := first.Components[0].Vertices[0]
		prof, err := client.Profile(ctx, server.ProfileRequest{Graph: name, Vertices: []int64{v}})
		if err != nil {
			return fail("profile", err)
		}
		if prof.Degeneracy < k {
			return fail("profile", fmt.Errorf("graph holds a %d-VCC but degeneracy is %d", k, prof.Degeneracy))
		}
		if len(prof.PerVertex) != 1 {
			return fail("profile", fmt.Errorf("asked for 1 vertex profile, got %d", len(prof.PerVertex)))
		}
		pv := prof.PerVertex[0]
		wantAtLeast := k
		if indexMaxK > 0 && indexMaxK < k {
			wantAtLeast = indexMaxK
		}
		if pv.Core < pv.Lambda || pv.Lambda < pv.Kappa || pv.Kappa < wantAtLeast {
			return fail("profile", fmt.Errorf("vertex %d in a %d-VCC profiles as core=%d λ=%d κ=%d",
				v, k, pv.Core, pv.Lambda, pv.Kappa))
		}
		fmt.Fprintf(stdout, "selftest: profile of %q: degeneracy=%d, %d components, recommended k %d..%d (suggested %d); vertex %d: core=%d λ=%d κ=%d\n",
			name, prof.Degeneracy, prof.Components.Count, prof.RecommendedK.Min, prof.RecommendedK.Max,
			prof.RecommendedK.Suggested, v, pv.Core, pv.Lambda, pv.Kappa)
	}

	batch, err := client.EnumerateBatch(ctx, server.BatchEnumerateRequest{Graph: name, Ks: []int{2, 3, k}})
	if err != nil {
		return fail("enumerate-batch", err)
	}
	if len(batch.Results) != 3 {
		return fail("enumerate-batch", fmt.Errorf("asked for 3 values of k, got %d results", len(batch.Results)))
	}
	fmt.Fprintf(stdout, "selftest: batch k=2,3,%d answered in one call (%d+%d+%d components)\n",
		k, len(batch.Results[0].Components), len(batch.Results[1].Components), len(batch.Results[2].Components))

	stats, err := client.Stats(ctx)
	if err != nil {
		return fail("stats", err)
	}
	if stats.Cache.Hits < 1 && !second.IndexServed {
		return fail("stats", fmt.Errorf("expected at least one cache hit, got %d", stats.Cache.Hits))
	}
	if stats.Enumerations.IndexServed < 1 {
		return fail("stats", fmt.Errorf("expected at least one index-served query, got %d",
			stats.Enumerations.IndexServed))
	}
	fmt.Fprintf(stdout, "selftest: cache hits=%d misses=%d, enumerations=%d, index-served=%d (%.1fms total)\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Enumerations.Started,
		stats.Enumerations.IndexServed, stats.Enumerations.TotalMS)

	// Dynamic layer: graft a fresh K6 onto the graph under labels far
	// outside any realistic dataset, verify the edit bumped the version,
	// and query the new community back out at k=5.
	const editBase = int64(1) << 40
	var grafted [][2]int64
	for i := int64(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			grafted = append(grafted, [2]int64{editBase + i, editBase + j})
		}
	}
	edit, err := client.Edits(ctx, server.EditsRequest{Graph: name, Inserts: grafted})
	if err != nil {
		return fail("edits", err)
	}
	if edit.AppliedInserts != len(grafted) || edit.Version < 2 {
		return fail("edits", fmt.Errorf("grafted %d edges but response says %d applied at version %d",
			len(grafted), edit.AppliedInserts, edit.Version))
	}
	fmt.Fprintf(stdout, "selftest: grafted a K6 in %.1fms (version %d, affected k<=%d, cache kept/dropped %d/%d)\n",
		edit.ElapsedMS, edit.Version, edit.AffectedMaxK, edit.CacheKept, edit.CacheInvalidated)
	infos, err = client.Graphs(ctx)
	if err != nil || len(infos) == 0 {
		return fail("graphs (after edit)", err)
	}
	if infos[0].Version != edit.Version {
		return fail("graphs (after edit)", fmt.Errorf("graph info version %d, edit reported %d",
			infos[0].Version, edit.Version))
	}
	containing, err := client.ComponentsContaining(ctx, server.ContainingRequest{
		Graph: name, K: 5, Vertex: editBase,
	})
	if err != nil {
		return fail("components-containing (grafted)", err)
	}
	if len(containing.Components) != 1 || containing.Components[0].NumVertices != 6 {
		return fail("components-containing (grafted)",
			fmt.Errorf("grafted K6 not recovered: %+v", containing.Components))
	}
	fmt.Fprintf(stdout, "selftest: grafted K6 recovered as a 5-VCC of %d vertices\n",
		containing.Components[0].NumVertices)

	// Removal: the daemon must forget the graph entirely.
	if err := client.RemoveGraph(ctx, name); err != nil {
		return fail("remove-graph", err)
	}
	if _, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: name, K: 2}); err == nil {
		return fail("remove-graph", fmt.Errorf("graph %q still answers after removal", name))
	}
	fmt.Fprintf(stdout, "selftest: graph %q removed\n", name)

	fmt.Fprintln(stdout, "selftest: ok")
	return 0
}

// checkNesting asserts every inner component's vertex set is contained in
// a single outer component — the per-level nesting the cohesion measures
// guarantee (k-VCC ⊆ k-ECC ⊆ k-core component).
func checkNesting(inner, outer []server.Component, outerName string) error {
	for i, in := range inner {
		contained := false
		for _, out := range outer {
			set := make(map[int64]bool, len(out.Vertices))
			for _, v := range out.Vertices {
				set[v] = true
			}
			all := true
			for _, v := range in.Vertices {
				if !set[v] {
					all = false
					break
				}
			}
			if all {
				contained = true
				break
			}
		}
		if !contained {
			return fmt.Errorf("inner component %d (%d vertices) is not inside any %s", i, len(in.Vertices), outerName)
		}
	}
	return nil
}

// runPersistSelfTest proves the durability layer end to end: a first
// server ingests and edits a graph against a throwaway data directory and
// is then abandoned without any shutdown — the in-process stand-in for a
// kill, since the fsync'd snapshot and WAL are exactly what a dead
// process leaves behind. A second server recovering from the same
// directory must report the same version and serve byte-identical
// enumeration results, without ever re-ingesting the graph.
func runPersistSelfTest(base server.Config, stdout, stderr io.Writer) int {
	fail := func(step string, err error) int {
		fmt.Fprintf(stderr, "kvccd: persist selftest: %s: %v\n", step, err)
		return 1
	}
	dir, err := os.MkdirTemp("", "kvccd-persist-*")
	if err != nil {
		return fail("tempdir", err)
	}
	defer os.RemoveAll(dir)

	cfg := base
	cfg.DataDir = dir
	// A high checkpoint interval keeps the edit batches below in the WAL,
	// so recovery exercises replay, not just the snapshot.
	cfg.CheckpointEvery = 64
	cfg.BuildIndex = false

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	a, err := server.Open(cfg)
	if err != nil {
		return fail("open (first)", err)
	}
	a.AddGraph("demo", demoGraph())

	// Two effective edit batches land in the WAL: graft two K6 cliques
	// under label ranges no dataset reaches.
	for i, labelBase := range []int64{1 << 40, 1 << 41} {
		var graft [][2]int64
		for x := int64(0); x < 6; x++ {
			for y := x + 1; y < 6; y++ {
				graft = append(graft, [2]int64{labelBase + x, labelBase + y})
			}
		}
		resp, err := a.Edits(ctx, server.EditsRequest{Graph: "demo", Inserts: graft})
		if err != nil {
			return fail("edits", err)
		}
		if !resp.Persisted {
			return fail("edits", fmt.Errorf("batch %d was not durably logged", i+1))
		}
	}
	before, err := a.Enumerate(ctx, server.EnumerateRequest{Graph: "demo", K: 5})
	if err != nil {
		return fail("enumerate (before)", err)
	}
	beforeJSON, err := json.Marshal(before.Components)
	if err != nil {
		return fail("marshal", err)
	}
	infos := a.Graphs()
	if len(infos) != 1 {
		return fail("graphs (before)", fmt.Errorf("want 1 graph, have %d", len(infos)))
	}
	wantVersion := infos[0].Version
	// No a.Close(): the first server "dies" here, keeping only what it
	// already fsync'd.

	b, err := server.Open(cfg)
	if err != nil {
		return fail("open (recovery)", err)
	}
	defer b.Close()
	infos = b.Graphs()
	if len(infos) != 1 || infos[0].Name != "demo" {
		return fail("recovery", fmt.Errorf("recovered graphs %+v, want just \"demo\"", infos))
	}
	if infos[0].Version != wantVersion {
		return fail("recovery", fmt.Errorf("recovered version %d, want %d", infos[0].Version, wantVersion))
	}
	after, err := b.Enumerate(ctx, server.EnumerateRequest{Graph: "demo", K: 5})
	if err != nil {
		return fail("enumerate (after)", err)
	}
	afterJSON, err := json.Marshal(after.Components)
	if err != nil {
		return fail("marshal", err)
	}
	if !bytes.Equal(beforeJSON, afterJSON) {
		return fail("recovery", fmt.Errorf("recovered graph enumerates differently at k=5"))
	}
	fmt.Fprintf(stdout, "persist selftest: recovered %q at version %d; k=5 results byte-identical (%d components)\n",
		"demo", wantVersion, len(after.Components))
	if ps := b.Stats().Paging; ps != nil {
		fmt.Fprintf(stdout, "persist selftest: paging policy=%s mapped=%dB resident=%d/%d pages, snapshot open %.3fms\n",
			ps.Policy, ps.MappedBytes, ps.ResidentPages, ps.TotalPages, ps.SnapshotOpenMS)
	}
	fmt.Fprintln(stdout, "persist selftest: ok")
	return 0
}
