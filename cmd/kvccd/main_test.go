package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeFixture writes two K6s sharing two vertices: two overlapping
// 4-VCCs, enough structure for every self-test step.
func writeFixture(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	cliques := [][]int{{0, 1, 2, 3, 4, 5}, {4, 5, 6, 7, 8, 9}}
	for _, c := range cliques {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				sb.WriteString(strconv.Itoa(c[i]) + "\t" + strconv.Itoa(c[j]) + "\n")
			}
		}
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfTestWithDemoGraph(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-selftest"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{
		"serving \"demo\"",
		"served from cache",
		"selftest: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// With -index the selftest must see the hierarchy index answer queries:
// the post-hierarchy enumerate is always index-served, whatever the
// background build's timing relative to the earlier cache checks.
func TestSelfTestWithIndex(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-selftest", "-index"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{
		"served from the index",
		"has cohesion",
		"answered in one call",
		"selftest: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// A truncated index (-index-max-k) is legitimately incomplete; the
// selftest must adapt its completeness and index-served expectations.
func TestSelfTestWithTruncatedIndex(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-selftest", "-index", "-index-max-k", "3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errBuf.String(), out.String())
	}
	if !strings.Contains(out.String(), "selftest: ok") {
		t.Fatalf("self-test did not pass:\n%s", out.String())
	}
}

// The engine and seed flags must thread through to a working server: the
// full selftest runs on the forced local engine with a non-default seed
// and must produce the same transcript (all engines are exact).
func TestSelfTestWithLocalEngine(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-selftest", "-engine", "local", "-seed", "7"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "selftest: ok") {
		t.Fatalf("self-test did not pass:\n%s", out.String())
	}
}

func TestSelfTestWithLoadedGraph(t *testing.T) {
	in := writeFixture(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-selftest", "-graph", "fixture=" + in}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "serving \"fixture\"") {
		t.Fatalf("fixture graph not served:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "selftest: ok") {
		t.Fatalf("self-test did not pass:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no-graphs", nil, 2},
		{"bad-graph-flag", []string{"-graph", "nopath"}, 2},
		{"dup-graph-name", []string{"-graph", "a=x", "-graph", "a=y"}, 2},
		{"missing-file", []string{"-graph", "g=/does/not/exist", "-selftest"}, 1},
		{"bad-flag", []string{"-wat"}, 2},
		{"bad-engine", []string{"-selftest", "-engine", "wat"}, 2},
	}
	for _, tc := range cases {
		var out, errBuf bytes.Buffer
		if code := run(tc.args, &out, &errBuf); code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, errBuf.String())
		}
	}
}

func TestGraphFlagsString(t *testing.T) {
	g := graphFlags{}
	if err := g.Set("social=social.txt"); err != nil {
		t.Fatal(err)
	}
	if got := g.String(); got != "social=social.txt" {
		t.Fatalf("String() = %q", got)
	}
}
