package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeFixture writes two K5s joined by a single edge: two 3-VCCs.
func writeFixture(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("# two cliques\n")
	for c := 0; c < 2; c++ {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				sb.WriteString(strconv.Itoa(c*5+i) + "\t" + strconv.Itoa(c*5+j) + "\n")
			}
		}
	}
	sb.WriteString("4 5\n")
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEnumerates(t *testing.T) {
	in := writeFixture(t)
	for _, algo := range []string{"basic", "ns", "gs", "star"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-k", "3", "-in", in, "-algo", algo}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("algo %s: exit %d, stderr: %s", algo, code, errBuf.String())
		}
		if got := strings.Count(out.String(), "# component"); got != 2 {
			t.Fatalf("algo %s: %d components, want 2\n%s", algo, got, out.String())
		}
	}
}

func TestRunStats(t *testing.T) {
	in := writeFixture(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-k", "3", "-in", in, "-stats"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "components: 2") {
		t.Fatalf("stats missing:\n%s", errBuf.String())
	}
}

func TestRunOutputFile(t *testing.T) {
	in := writeFixture(t)
	outPath := filepath.Join(t.TempDir(), "res.txt")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-k", "3", "-in", in, "-out", outPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# component 0") {
		t.Fatalf("output file content:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"missing-in", []string{"-k", "3"}, 2},
		{"bad-algo", []string{"-k", "3", "-in", "x", "-algo", "nope"}, 2},
		{"missing-file", []string{"-k", "3", "-in", "/does/not/exist"}, 1},
		{"bad-flag", []string{"-wat"}, 2},
	}
	for _, tc := range cases {
		var out, errBuf bytes.Buffer
		if code := run(tc.args, &out, &errBuf); code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, errBuf.String())
		}
	}
}

func TestRunBadK(t *testing.T) {
	in := writeFixture(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-k", "0", "-in", in}, &out, &errBuf); code != 1 {
		t.Fatalf("k=0 should fail with exit 1, got %d", code)
	}
}
