// Command kvcc enumerates the k-vertex connected components of an
// edge-list graph.
//
// Usage:
//
//	kvcc -k 4 -in graph.txt [-algo star|basic|ns|gs] [-out comps.txt]
//	     [-stats] [-parallel N]
//
// The input is a SNAP-style edge list ('#' comments, "u v" per line). The
// output lists each component's vertex labels, one component per line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kvcc"
	"kvcc/graphio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k        = fs.Int("k", 4, "connectivity parameter k (>= 1)")
		in       = fs.String("in", "", "input edge list file (required)")
		out      = fs.String("out", "", "output file (default stdout)")
		algo     = fs.String("algo", "star", "algorithm: basic | ns | gs | star")
		stats    = fs.Bool("stats", false, "print work statistics to stderr")
		parallel = fs.Int("parallel", 1, "worker count for independent subgraphs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "kvcc: -in is required")
		fs.Usage()
		return 2
	}
	algorithm, ok := map[string]kvcc.Algorithm{
		"basic": kvcc.VCCE, "ns": kvcc.VCCEN, "gs": kvcc.VCCEG, "star": kvcc.VCCEStar,
	}[*algo]
	if !ok {
		fmt.Fprintf(stderr, "kvcc: unknown algorithm %q\n", *algo)
		return 2
	}

	g, err := graphio.ReadEdgeListFile(*in)
	if err != nil {
		fmt.Fprintln(stderr, "kvcc:", err)
		return 1
	}
	res, err := kvcc.Enumerate(g, *k,
		kvcc.WithAlgorithm(algorithm), kvcc.WithParallelism(*parallel))
	if err != nil {
		fmt.Fprintln(stderr, "kvcc:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "kvcc:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := graphio.WriteComponents(w, res.Components); err != nil {
		fmt.Fprintln(stderr, "kvcc:", err)
		return 1
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(stderr,
			"components: %d\nglobal-cut calls: %d\npartitions: %d\nloc-cut tests: %d\nflow runs: %d\nswept ns1/ns2/gs: %d/%d/%d\ntested: %d\npeak bytes: %d\n",
			len(res.Components), s.GlobalCutCalls, s.Partitions, s.LocCutTests,
			s.FlowRuns, s.SweptNS1, s.SweptNS2, s.SweptGS, s.TestedNonPrune, s.PeakBytes)
	}
	return 0
}
