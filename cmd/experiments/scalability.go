package main

import (
	"fmt"
	"time"

	"kvcc"
	"kvcc/gen"
)

// runFig13 regenerates Fig. 13: processing time of the four algorithms
// while sampling 20%..100% of vertices (induced subgraph) and of edges
// (incident vertices), on the Google and Cit stand-ins at k=20.
func runFig13(cfg config) error {
	const k = 20
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, name := range []string{"Google", "Cit"} {
		g := loadDataset(name, cfg.scale)
		for _, mode := range []string{"vary |V|", "vary |E|"} {
			fmt.Printf("%s, %s (k=%d)\n", name, mode, k)
			fmt.Printf("  %5s %10s %12s %14s %14s %14s %14s\n",
				"frac", "|V|", "|E|", "VCCE", "VCCE-N", "VCCE-G", "VCCE*")
			for _, f := range fractions {
				sample := g
				if f < 1.0 {
					if mode == "vary |V|" {
						sample = gen.SampleVertices(g, f, 7)
					} else {
						sample = gen.SampleEdges(g, f, 7)
					}
				}
				times := make([]time.Duration, len(efficiencyAlgos))
				for i, algo := range efficiencyAlgos {
					_, times[i] = enumerate(sample, k, algo)
				}
				fmt.Printf("  %4.0f%% %10d %12d %14v %14v %14v %14v\n",
					f*100, sample.NumVertices(), sample.NumEdges(),
					times[0].Round(time.Microsecond), times[1].Round(time.Microsecond),
					times[2].Round(time.Microsecond), times[3].Round(time.Microsecond))
			}
		}
	}
	fmt.Println("expected shape: time grows with the sample fraction; VCCE* stays")
	fmt.Println("fastest and its lead over VCCE widens with |E| (paper Fig. 13).")
	return nil
}

var _ = kvcc.VCCE // keep the import pinned for the algorithm list
