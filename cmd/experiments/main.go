// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic dataset stand-ins:
//
//	table1  network statistics                       (Table 1)
//	fig7    average diameter, k-core/k-ECC/k-VCC     (Fig. 7)
//	fig8    average edge density                     (Fig. 8)
//	fig9    average clustering coefficient           (Fig. 9)
//	fig10   processing time of the four algorithms   (Fig. 10)
//	table2  sweep-rule pruning proportions           (Table 2)
//	fig11   number of k-VCCs                         (Fig. 11)
//	fig12   memory usage of VCCE*                    (Fig. 12)
//	fig13   scalability varying |V| and |E|          (Fig. 13)
//	fig14   DBLP-style ego network case study        (Fig. 14)
//
// Usage:
//
//	experiments -exp all -scale 0.5
//	experiments -exp fig10,table2 -scale 1.0
//
// Absolute numbers differ from the paper (synthetic data, different
// hardware); the reproduction target is the qualitative shape — see
// EXPERIMENTS.md for the side-by-side reading.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvcc"
	"kvcc/graph"
	"kvcc/internal/dataset"
)

type config struct {
	scale float64
}

var experiments = []struct {
	name string
	desc string
	run  func(cfg config) error
}{
	{"table1", "Table 1: network statistics", runTable1},
	{"fig7", "Fig. 7: average diameter", func(c config) error { return runEffectiveness(c, "diameter") }},
	{"fig8", "Fig. 8: average edge density", func(c config) error { return runEffectiveness(c, "density") }},
	{"fig9", "Fig. 9: average clustering coefficient", func(c config) error { return runEffectiveness(c, "clustering") }},
	{"fig10", "Fig. 10: processing time", runFig10},
	{"table2", "Table 2: sweep rule proportions", runTable2},
	{"fig11", "Fig. 11: number of k-VCCs", runFig11},
	{"fig12", "Fig. 12: memory usage of VCCE*", runFig12},
	{"fig13", "Fig. 13: scalability", runFig13},
	{"fig14", "Fig. 14: case study", runFig14},
}

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		scale = flag.Float64("scale", 0.5, "dataset scale factor (1.0 = full synthetic size)")
	)
	flag.Parse()
	cfg := config{scale: *scale}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	ran := 0
	for _, e := range experiments {
		if !all && !want[e.name] {
			continue
		}
		fmt.Printf("==== %s (%s, scale %.2f) ====\n", e.name, e.desc, cfg.scale)
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -exp %q\n", *exp)
		os.Exit(2)
	}
}

// enumerate times one enumeration run.
func enumerate(g *graph.Graph, k int, algo kvcc.Algorithm) (*kvcc.Result, time.Duration) {
	start := time.Now()
	res, err := kvcc.Enumerate(g, k, kvcc.WithAlgorithm(algo))
	if err != nil {
		panic(err)
	}
	return res, time.Since(start)
}

func loadDataset(name string, scale float64) *graph.Graph {
	g, err := dataset.Load(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}
