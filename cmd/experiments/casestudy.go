package main

import (
	"fmt"
	"sort"

	"kvcc"
	"kvcc/gen"
)

// runFig14 regenerates the Fig. 14 case study: all 4-VCCs containing a
// prolific author in a DBLP-style collaboration ego network, versus the
// single 4-ECC / 4-core, with shared "core authors" and bridging authors
// that the k-VCC view correctly excludes.
func runFig14(cfg config) error {
	net := gen.CollaborationEgoNet(gen.EgoNetConfig{
		Groups: 7, GroupMin: 7, GroupMax: 12, IntraProb: 0.85,
		SharedAuthors: 1, Bridges: 2, Seed: 14,
	})
	g := net.Graph
	const k = 4
	fmt.Printf("ego network of %q: %d authors, %d edges\n",
		net.Names[net.Hub], g.NumVertices(), g.NumEdges())

	res, err := kvcc.Enumerate(g, k)
	if err != nil {
		return err
	}
	hubComps := res.ComponentsContaining(net.Hub)
	fmt.Printf("%d-VCCs containing the hub: %d (paper: seven research groups)\n",
		k, len(hubComps))
	multi := map[int64]int{}
	for _, i := range hubComps {
		c := res.Components[i]
		fmt.Printf("  group %d: %d authors\n", i, c.NumVertices()-1)
		for _, l := range c.Labels() {
			multi[l]++
		}
	}
	var core []string
	for l, n := range multi {
		if n > 1 && l != net.Hub {
			core = append(core, net.Names[l])
		}
	}
	sort.Strings(core)
	fmt.Printf("core authors in multiple groups: %v\n", core)

	eccs := kvcc.KECC(g, k)
	cores := kvcc.KCoreComponents(g, k)
	fmt.Printf("%d-ECCs: %d, %d-core components: %d (paper: one of each)\n",
		k, len(eccs), k, len(cores))

	inVCC := map[int64]bool{}
	for _, c := range res.Components {
		for _, l := range c.Labels() {
			inVCC[l] = true
		}
	}
	for _, b := range net.Bridges {
		inECC := false
		for _, e := range eccs {
			for _, l := range e.Labels() {
				if l == b {
					inECC = true
				}
			}
		}
		fmt.Printf("%s: in %d-ECC %v, in any %d-VCC %v (paper's 'Haixun Wang' pattern: true, false)\n",
			net.Names[b], k, inECC, k, inVCC[b])
	}
	return nil
}
