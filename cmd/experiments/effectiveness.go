package main

import (
	"fmt"

	"kvcc"
	"kvcc/graph"
	"kvcc/internal/dataset"
	"kvcc/metrics"
)

// runTable1 regenerates Table 1: per-dataset network statistics, generated
// stand-in next to the paper's reported numbers.
func runTable1(cfg config) error {
	fmt.Printf("%-10s | %10s %12s %8s %8s | %12s %14s %8s %8s\n",
		"dataset", "|V|", "|E|", "density", "maxdeg", "paper |V|", "paper |E|", "p.dens", "p.maxd")
	for _, row := range dataset.Table1(cfg.scale) {
		fmt.Printf("%-10s | %10d %12d %8.2f %8d | %12d %14d %8.2f %8d\n",
			row.Meta.Name, row.Vertices, row.Edges, row.Density, row.MaxDegree,
			row.Meta.PaperVertices, row.Meta.PaperEdges, row.Meta.PaperDensity, row.Meta.PaperMaxDegree)
	}
	return nil
}

// effectivenessTargets mirrors the paper's Fig. 7-9 dataset/k pairs.
var effectivenessTargets = []struct {
	dataset string
	ks      []int
}{
	{"Youtube", []int{6, 7, 8, 9}},
	{"DBLP", []int{15, 16, 17, 18}},
	{"Google", []int{18, 19, 20, 21}},
	{"Cnr", []int{17, 18, 19, 20}},
}

// modelAverages caches the three models' quality averages per
// (dataset, k, scale), so figs 7-9 share one computation pass.
type modelKey struct {
	dataset string
	k       int
	scale   float64
}

var modelCache = map[modelKey][3]metrics.Averages{}

func modelsFor(g *graph.Graph, key modelKey) ([3]metrics.Averages, error) {
	if got, ok := modelCache[key]; ok {
		return got, nil
	}
	cores := kvcc.KCoreComponents(g, key.k)
	eccs := kvcc.KECC(g, key.k)
	res, err := kvcc.Enumerate(g, key.k)
	if err != nil {
		return [3]metrics.Averages{}, err
	}
	out := [3]metrics.Averages{
		metrics.Average(cores), metrics.Average(eccs), metrics.Average(res.Components),
	}
	modelCache[key] = out
	return out, nil
}

// runEffectiveness regenerates Figs. 7, 8 or 9: the chosen quality metric
// averaged over all k-core components, k-ECCs and k-VCCs, for each
// dataset/k pair the paper plots.
func runEffectiveness(cfg config, metric string) error {
	value := func(a metrics.Averages) float64 {
		switch metric {
		case "diameter":
			return a.AvgDiameter
		case "density":
			return a.AvgDensity
		case "clustering":
			return a.AvgClustering
		default:
			panic("unknown metric " + metric)
		}
	}
	for _, target := range effectivenessTargets {
		g := loadDataset(target.dataset, cfg.scale)
		fmt.Printf("%s (n=%d m=%d): average %s\n",
			target.dataset, g.NumVertices(), g.NumEdges(), metric)
		fmt.Printf("  %4s %12s %12s %12s\n", "k", "k-CC", "k-ECC", "k-VCC")
		for _, k := range target.ks {
			avgs, err := modelsFor(g, modelKey{target.dataset, k, cfg.scale})
			if err != nil {
				return err
			}
			fmt.Printf("  %4d %12.3f %12.3f %12.3f\n",
				k, value(avgs[0]), value(avgs[1]), value(avgs[2]))
			noteModelOrder(metric, avgs, target.dataset, k)
		}
	}
	fmt.Println("expected shape: k-VCC has the smallest diameter and the largest")
	fmt.Println("density/clustering of the three models at every k (paper Figs. 7-9).")
	return nil
}

// noteModelOrder warns when the paper's expected ordering between the
// three models does not hold for a data point (informational only: a few
// inversions can occur at small scale, as the paper itself notes for some
// k values).
func noteModelOrder(metric string, avgs [3]metrics.Averages, ds string, k int) {
	c, e, v := avgs[0], avgs[1], avgs[2]
	switch metric {
	case "diameter":
		if !(v.AvgDiameter <= e.AvgDiameter+1e-9 && e.AvgDiameter <= c.AvgDiameter+1e-9) {
			fmt.Printf("  note: diameter ordering inverted at %s k=%d\n", ds, k)
		}
	case "density":
		if !(v.AvgDensity+1e-9 >= e.AvgDensity && e.AvgDensity+1e-9 >= c.AvgDensity) {
			fmt.Printf("  note: density ordering inverted at %s k=%d\n", ds, k)
		}
	case "clustering":
		if !(v.AvgClustering+1e-9 >= c.AvgClustering) {
			fmt.Printf("  note: clustering ordering inverted at %s k=%d\n", ds, k)
		}
	}
}
