package main

import (
	"fmt"
	"time"

	"kvcc"
)

// efficiencyDatasets and efficiencyKs mirror the paper's Figs. 10-12 and
// Table 2 setup: six datasets, k from 20 to 40 in steps of 5.
var (
	efficiencyDatasets = []string{"Stanford", "DBLP", "ND", "Google", "Cit", "Cnr"}
	efficiencyKs       = []int{20, 25, 30, 35, 40}
	efficiencyAlgos    = []kvcc.Algorithm{kvcc.VCCE, kvcc.VCCEN, kvcc.VCCEG, kvcc.VCCEStar}
)

// runFig10 regenerates Fig. 10: wall-clock processing time of the four
// algorithm variants per dataset and k.
func runFig10(cfg config) error {
	for _, name := range efficiencyDatasets {
		g := loadDataset(name, cfg.scale)
		fmt.Printf("%s (n=%d m=%d): processing time\n", name, g.NumVertices(), g.NumEdges())
		fmt.Printf("  %4s %14s %14s %14s %14s %10s\n",
			"k", "VCCE", "VCCE-N", "VCCE-G", "VCCE*", "speedup")
		for _, k := range efficiencyKs {
			times := make([]time.Duration, len(efficiencyAlgos))
			for i, algo := range efficiencyAlgos {
				_, times[i] = enumerate(g, k, algo)
			}
			speedup := float64(times[0]) / float64(times[3])
			fmt.Printf("  %4d %14v %14v %14v %14v %9.1fx\n",
				k, times[0].Round(time.Microsecond), times[1].Round(time.Microsecond),
				times[2].Round(time.Microsecond), times[3].Round(time.Microsecond), speedup)
		}
	}
	fmt.Println("expected shape: VCCE slowest, VCCE-N and VCCE-G in between, VCCE*")
	fmt.Println("fastest; time generally decreases as k grows (paper Fig. 10).")
	return nil
}

// runTable2 regenerates Table 2: the proportion of phase-1 vertices pruned
// by each sweep rule, averaged over k=20..40, measured on VCCE*.
func runTable2(cfg config) error {
	fmt.Printf("%-10s %8s %8s %8s %9s\n", "dataset", "NS 1", "NS 2", "GS", "Non-Pru")
	for _, name := range efficiencyDatasets {
		g := loadDataset(name, cfg.scale)
		var ns1, ns2, gs, tested float64
		for _, k := range efficiencyKs {
			res, _ := enumerate(g, k, kvcc.VCCEStar)
			s := res.Stats
			total := float64(s.SweptNS1 + s.SweptNS2 + s.SweptGS + s.TestedNonPrune)
			if total == 0 {
				continue
			}
			ns1 += float64(s.SweptNS1) / total
			ns2 += float64(s.SweptNS2) / total
			gs += float64(s.SweptGS) / total
			tested += float64(s.TestedNonPrune) / total
		}
		n := float64(len(efficiencyKs))
		fmt.Printf("%-10s %7.0f%% %7.0f%% %7.0f%% %8.0f%%\n",
			name, 100*ns1/n, 100*ns2/n, 100*gs/n, 100*tested/n)
	}
	fmt.Println("expected shape: a large majority of vertices is pruned; NS2 is")
	fmt.Println("strong everywhere, NS1 strongest on collaboration-style data,")
	fmt.Println("GS strongest on Cnr (paper Table 2).")
	return nil
}

// runFig11 regenerates Fig. 11: the number of k-VCCs per dataset and k.
func runFig11(cfg config) error {
	fmt.Printf("%-10s", "dataset")
	for _, k := range efficiencyKs {
		fmt.Printf(" %8s", fmt.Sprintf("k=%d", k))
	}
	fmt.Println()
	for _, name := range efficiencyDatasets {
		g := loadDataset(name, cfg.scale)
		fmt.Printf("%-10s", name)
		for _, k := range efficiencyKs {
			res, _ := enumerate(g, k, kvcc.VCCEStar)
			fmt.Printf(" %8d", len(res.Components))
		}
		fmt.Println()
	}
	fmt.Println("expected shape: counts decrease as k grows (paper Fig. 11).")
	return nil
}

// runFig12 regenerates Fig. 12: peak memory of VCCE* per dataset and k
// (structural bytes of live subgraphs plus results; deterministic).
func runFig12(cfg config) error {
	fmt.Printf("%-10s", "dataset")
	for _, k := range efficiencyKs {
		fmt.Printf(" %10s", fmt.Sprintf("k=%d", k))
	}
	fmt.Println()
	for _, name := range efficiencyDatasets {
		g := loadDataset(name, cfg.scale)
		fmt.Printf("%-10s", name)
		for _, k := range efficiencyKs {
			res, _ := enumerate(g, k, kvcc.VCCEStar)
			fmt.Printf(" %9.2fM", float64(res.Stats.PeakBytes)/(1<<20))
		}
		fmt.Println()
	}
	fmt.Println("expected shape: memory generally decreases as k grows (larger k")
	fmt.Println("means a smaller k-core and fewer partitions; paper Fig. 12).")
	return nil
}
