package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("experiment failed: %v", ferr)
	}
	return out
}

func TestRunTable1Smoke(t *testing.T) {
	out := captureStdout(t, func() error { return runTable1(config{scale: 0.05}) })
	for _, want := range []string{"Stanford", "DBLP", "Cit", "paper |V|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig14Smoke(t *testing.T) {
	out := captureStdout(t, func() error { return runFig14(config{scale: 0.05}) })
	for _, want := range []string{
		"4-VCCs containing the hub: 7",
		"4-ECCs: 1",
		"in any 4-VCC false",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig14 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig11Smoke(t *testing.T) {
	out := captureStdout(t, func() error { return runFig11(config{scale: 0.05}) })
	if !strings.Contains(out, "k=20") || !strings.Contains(out, "Cnr") {
		t.Fatalf("fig11 output malformed:\n%s", out)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig7", "fig8", "fig9", "fig10",
		"table2", "fig11", "fig12", "fig13", "fig14"}
	have := map[string]bool{}
	for _, e := range experiments {
		have[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %s incomplete", e.name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("experiment %s missing from registry", name)
		}
	}
}
