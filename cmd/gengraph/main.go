// Command gengraph writes synthetic graphs in edge-list format: the
// paper's dataset stand-ins and the generic generators from kvcc/gen.
//
// Usage:
//
//	gengraph -type dataset -name Google -scale 0.5 -out google.txt
//	gengraph -type gnm -n 10000 -m 50000 -seed 7 -out random.txt
//	gengraph -type ba -n 10000 -deg 4 -out ba.txt
//	gengraph -type web -n 10000 -deg 6 -copy 0.7 -out web.txt
//	gengraph -type planted -n 50 -deg 20 -out planted.txt   (n = communities, deg = size)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/graphio"
	"kvcc/internal/dataset"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		typ   = fs.String("type", "dataset", "dataset | gnm | gnp | ba | web | planted")
		name  = fs.String("name", "Google", "dataset name for -type dataset")
		scale = fs.Float64("scale", 1.0, "dataset scale factor")
		n     = fs.Int("n", 10000, "vertex count (or community count for planted)")
		m     = fs.Int("m", 50000, "edge count for gnm")
		p     = fs.Float64("p", 0.01, "edge probability for gnp")
		deg   = fs.Int("deg", 4, "attachment degree / out-degree / community size")
		cp    = fs.Float64("copy", 0.7, "copy probability for web")
		seed  = fs.Int64("seed", 1, "random seed")
		out   = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *graph.Graph
	var err error
	switch *typ {
	case "dataset":
		g, err = dataset.Load(*name, *scale)
	case "gnm":
		g = gen.GNM(*n, *m, *seed)
	case "gnp":
		g = gen.GNP(*n, *p, *seed)
	case "ba":
		g = gen.BarabasiAlbert(*n, *deg+2, *deg, *seed)
	case "web":
		g = gen.WebGraph(*n, *deg, *cp, *seed)
	case "planted":
		g, _ = gen.Planted(gen.PlantedConfig{
			Communities: *n, MinSize: *deg, MaxSize: *deg + *deg/2,
			IntraProb: 0.85, ChainOverlap: 2, ChainEvery: 4,
			BridgeEdges: *n / 2, NoiseVertices: *n * *deg,
			NoiseDegree: 2, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown -type %q", *typ)
	}
	if err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "gengraph:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := graphio.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}
	fmt.Fprintf(stderr, "gengraph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	return 0
}
