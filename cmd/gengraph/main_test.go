package main

import (
	"bytes"
	"strings"
	"testing"

	"kvcc/graphio"
)

func TestRunGNM(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-type", "gnm", "-n", "50", "-m", "120", "-seed", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	g, err := graphio.ReadEdgeList(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 120 {
		t.Fatalf("edges = %d, want 120", g.NumEdges())
	}
}

func TestRunDataset(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-type", "dataset", "-name", "Youtube", "-scale", "0.05"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	g, err := graphio.ReadEdgeList(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset output")
	}
	if !strings.Contains(errBuf.String(), "vertices") {
		t.Fatalf("missing summary: %s", errBuf.String())
	}
}

func TestRunAllGeneratorTypes(t *testing.T) {
	for _, typ := range []string{"gnp", "ba", "web", "planted"} {
		var out, errBuf bytes.Buffer
		args := []string{"-type", typ, "-n", "60", "-deg", "4", "-p", "0.1"}
		if typ == "planted" {
			args = []string{"-type", typ, "-n", "4", "-deg", "8"}
		}
		if code := run(args, &out, &errBuf); code != 0 {
			t.Fatalf("%s: exit %d: %s", typ, code, errBuf.String())
		}
		if _, err := graphio.ReadEdgeList(strings.NewReader(out.String())); err != nil {
			t.Fatalf("%s: output not parseable: %v", typ, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad-type", []string{"-type", "nope"}, 1},
		{"bad-dataset", []string{"-type", "dataset", "-name", "nope"}, 1},
		{"bad-flag", []string{"-wat"}, 2},
	}
	for _, tc := range cases {
		var out, errBuf bytes.Buffer
		if code := run(tc.args, &out, &errBuf); code != tc.code {
			t.Errorf("%s: exit %d, want %d", tc.name, code, tc.code)
		}
	}
}
