package kvcc_test

import (
	"context"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/internal/core"
	"kvcc/internal/difftest"
)

// FuzzIncrementalEquivalence fuzzes the dynamic layer's differential
// guarantee: starting from a random graph, apply a fuzzer-chosen edit
// script through a Dynamic handle and require the incrementally
// maintained result to be identical — same components, same canonical
// order — to the monolithic from-scratch enumeration engine after every
// batch. The edit script bytes decode to label pairs slightly beyond the
// base label range, so insertions also create fresh vertices; the k-core
// components therefore merge, grow, shrink, split, appear and disappear
// under the fuzzer's control.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{1, 2, 3, 4, 0x80, 5})
	f.Add(int64(7), uint8(1), []byte{0, 1, 0, 2, 0, 3, 0x81, 9, 0x82, 10})
	f.Add(int64(42), uint8(2), []byte{9, 9, 9, 8, 7, 6, 0x90, 0x91})
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, script []byte) {
		if len(script) > 96 {
			script = script[:96]
		}
		k := 2 + int(kRaw%4)
		g := gen.GNP(18, 0.3, seed)
		d, err := kvcc.NewDynamic(g, k)
		if err != nil {
			t.Fatal(err)
		}
		// Decode: consecutive byte pairs are an edit; the high bit of the
		// first byte selects delete, labels run mod 24 (past the 18 base
		// vertices). Batches of up to four edits apply together.
		var ins, del [][2]int64
		flush := func() {
			res, err := d.ApplyEdits(context.Background(), ins, del)
			if err != nil {
				t.Fatal(err)
			}
			cold, _, err := core.Enumerate(d.Graph(), k, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := difftest.Signatures(res.Components)
			want := difftest.Signatures(cold)
			if len(got) != len(want) {
				t.Fatalf("incremental has %d components, cold %d\n  inc  %v\n  cold %v",
					len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("component %d diverges:\n  inc  %v\n  cold %v", i, got, want)
				}
			}
			ins, del = nil, nil
		}
		for i := 0; i+1 < len(script); i += 2 {
			a := int64(script[i] &^ 0x80 % 24)
			b := int64(script[i+1] % 24)
			if script[i]&0x80 != 0 {
				del = append(del, [2]int64{a, b})
			} else {
				ins = append(ins, [2]int64{a, b})
			}
			if len(ins)+len(del) >= 4 {
				flush()
			}
		}
		flush()
	})
}
