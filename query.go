package kvcc

import (
	"kvcc/graph"
	"kvcc/internal/core"
	"kvcc/internal/kcore"
)

// EnumerateContaining computes only the k-VCCs that contain at least one
// of the given vertex labels — the workflow of the paper's case study
// ("query all 4-VCCs containing an author"). It prunes to the k-core
// first and enumerates only the connected components that still hold a
// queried label, so the cost is local to the queried region rather than
// the whole graph.
func EnumerateContaining(g *graph.Graph, k int, labels []int64, opts ...Option) (*Result, error) {
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	wanted := make(map[int64]bool, len(labels))
	for _, l := range labels {
		wanted[l] = true
	}

	reduced, _ := kcore.Reduce(g, k)
	var all []*graph.Graph
	stats := Stats{}
	for _, comp := range reduced.ConnectedComponents() {
		relevant := false
		for _, v := range comp {
			if wanted[reduced.Label(v)] {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		comps, st, err := core.Enumerate(reduced.InducedSubgraph(comp), k, options)
		if err != nil {
			return nil, err
		}
		all = append(all, comps...)
		stats = addStats(stats, *st)
	}

	res := &Result{K: k, Stats: stats}
	for _, c := range all {
		for _, l := range c.Labels() {
			if wanted[l] {
				res.Components = append(res.Components, c)
				break
			}
		}
	}
	return res, nil
}

func addStats(a, b Stats) Stats {
	a.Add(&b)
	return a
}

// OverlapGraph returns the meta-graph of the result: one vertex per
// component (labeled by component index) and an edge between every pair
// of components that share at least one vertex. This is the structure the
// paper's Fig. 14 visualizes: research groups joined through shared core
// authors.
func (r *Result) OverlapGraph() *graph.Graph {
	b := graph.NewBuilder(len(r.Components))
	for i := range r.Components {
		b.AddVertex(int64(i))
	}
	m := r.OverlapMatrix()
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			if m[i][j] > 0 {
				b.AddEdge(int64(i), int64(j))
			}
		}
	}
	return b.Build()
}
