// Package kvcc enumerates k-vertex connected components (k-VCCs) in large
// graphs, implementing the ICDE 2019 paper "Enumerating k-Vertex Connected
// Components in Large Graphs" by Wen, Qin, Lin, Zhang and Chang.
//
// A k-VCC is a maximal subgraph with more than k vertices that stays
// connected after the removal of any k-1 vertices (Section 3,
// Definition 1). Compared to k-cores and k-edge connected components,
// k-VCCs eliminate the free-rider effect: loosely attached dense regions
// that share fewer than k vertices are reported as separate components,
// which may overlap in up to k-1 vertices (Property 1).
//
// # Quick start
//
//	g, err := graphio.ReadEdgeListFile("network.txt")
//	if err != nil { ... }
//	res, err := kvcc.Enumerate(g, 4)
//	if err != nil { ... }
//	for _, comp := range res.Components {
//		fmt.Println(comp.NumVertices(), "vertices")
//	}
//
// # The algorithm
//
// Enumerate runs KVCC-ENUM (Algorithm 1, Section 4): reduce the input to
// its k-core, then recursively partition each connected component along a
// qualified minimum vertex cut until every remaining subgraph is
// k-connected. The partition is overlapped — the cut vertices are kept on
// every side (Section 4.1) — which is what lets distinct k-VCCs share up
// to k-1 vertices. Cut discovery is GLOBAL-CUT (Algorithm 2,
// Section 4.2): sparse certificates bound each local connectivity test,
// and repeated max-flow work is avoided by the paper's two sweep
// strategies, neighbor sweep (Section 5.1: strong side-vertices and
// vertex deposits) and group sweep (Section 5.2: side-groups and group
// deposits). With both sweeps enabled the cut routine is GLOBAL-CUT*
// (Algorithm 3), the default here.
//
// WithAlgorithm selects the variants the paper benchmarks in Section 6.2:
// VCCE (no sweeps), VCCEN (neighbor sweep only), VCCEG (group sweep
// only), and VCCEStar (both, the default). All four produce identical
// component sets; they differ only in pruning work, reported in Stats.
//
// Beyond enumeration, the package answers the paper's query workloads:
// EnumerateContaining restricts the search to components holding given
// vertices (the Section 6.3 case-study question), VertexConnectivity /
// MinimumVertexCut / LocalConnectivity expose the underlying connectivity
// machinery (Section 2), and KCore / KECC provide the comparison models
// of the effectiveness study (Section 6.1). Validate independently checks
// a result against Definition 1.
//
// # Dynamic graphs
//
// Graphs need not be frozen: NewDynamic wraps one in a mutation overlay
// and keeps its k-VCCs current across edits. ApplyEdits applies a batch
// of edge insertions and deletions (by vertex label; inserts create
// vertices on first mention) and recomputes only the k-core connected
// components the batch touched — every k-VCC lives inside exactly one
// such component, so components whose structure an edit left alone are
// served verbatim from the previous result. The maintained Result is
// indistinguishable from a from-scratch enumeration at the same version.
// EnumerateIncremental exposes the same reuse against any prior Result.
//
// Sub-packages:
//
//   - graph: the immutable CSR graph all algorithms operate on, plus the
//     Delta mutation overlay behind the dynamic API
//   - graphio: SNAP-style edge-list reading and writing
//   - metrics: diameter, edge density, clustering coefficient (Eqs. 1-6)
//   - gen: deterministic synthetic graph generators
//   - hierarchy: the nesting tree of k-VCCs across all k
//   - server: a long-running query service with result caching (kvccd)
//
// Binaries: cmd/kvcc (one-shot enumeration), cmd/kvccd (the serving
// daemon), cmd/gengraph (dataset generation), cmd/experiments (the
// paper's evaluation suite).
package kvcc
