// Package kvcc enumerates k-vertex connected components (k-VCCs) in large
// graphs, implementing the ICDE 2019 paper "Enumerating k-Vertex Connected
// Components in Large Graphs" by Wen, Qin, Lin, Zhang and Chang.
//
// A k-VCC is a maximal subgraph with more than k vertices that stays
// connected after the removal of any k-1 vertices. Compared to k-cores and
// k-edge connected components, k-VCCs eliminate the free-rider effect:
// loosely attached dense regions that share fewer than k vertices are
// reported as separate components, which may overlap in up to k-1 vertices.
//
// # Quick start
//
//	g, err := graphio.ReadEdgeListFile("network.txt")
//	if err != nil { ... }
//	res, err := kvcc.Enumerate(g, 4)
//	if err != nil { ... }
//	for _, comp := range res.Components {
//		fmt.Println(comp.NumVertices(), "vertices")
//	}
//
// The enumeration runs KVCC-ENUM: recursive overlapped graph partition
// driven by minimum vertex cuts, with k-core pruning, sparse certificates,
// and the paper's neighbor-sweep and group-sweep optimizations
// (GLOBAL-CUT*). Use Options to select the unoptimized variants the paper
// benchmarks against (VCCE, VCCE-N, VCCE-G).
//
// Sub-packages:
//
//   - graph: the graph data structure all algorithms operate on
//   - graphio: SNAP-style edge-list reading and writing
//   - metrics: diameter, edge density, clustering coefficient
//   - gen: deterministic synthetic graph generators
package kvcc
